"""C-Threads-style threading for simulated processes.

Camelot's transaction manager follows three rules the paper spells out:
create a pool of threads at start and grow it on demand (never destroy
one); protect primary data structures with locks; and never tie a thread
to a transaction — every thread waits for *any* input, processes it, and
resumes waiting.  :class:`CThreadsPool` implements exactly that shape.

Two lock flavours mirror the paper:

- the plain C-Threads mutex (:class:`repro.sim.resources.SimLock`): purely
  exclusive, spin-style, self-deadlocking if re-acquired;
- ``rw-lock`` (:class:`RwLock`): shared/exclusive, built on condition
  variables so long waits do not burn CPU.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.mach.message import Message
from repro.mach.ports import Port
from repro.sim.kernel import Kernel
from repro.sim.process import Process, ProcessKilled
from repro.sim.resources import Condition, SimLock

# A handler receives one message and returns a process-body generator.
Handler = Callable[[Message], Generator[Any, Any, None]]


class CThreadsPool:
    """A fixed-or-growable pool of worker threads draining one port.

    Every worker runs the same loop: receive from ``port``, invoke
    ``handler(msg)`` (a generator — it may block on locks, log forces,
    nested RPCs), and go back to receiving.  With ``size=1`` a single
    long-running handler (e.g. a commit protocol waiting on a log force)
    blocks all other requests — the effect the paper's Figures 4-5
    measure.
    """

    def __init__(self, kernel: Kernel, port: Port, handler: Handler,
                 size: int, name: str = "pool",
                 spawn: Optional[Callable[..., Process]] = None):
        if size < 1:
            raise ValueError("pool needs at least one thread")
        self.kernel = kernel
        self.port = port
        self.handler = handler
        self.name = name
        self._spawn = spawn or (lambda body, name: Process(kernel, body, name=name))
        self.workers: List[Process] = []
        self.busy = 0
        self.handled = 0
        for _ in range(size):
            self.grow()

    @property
    def size(self) -> int:
        return len(self.workers)

    def grow(self) -> None:
        """Add one worker (threads are never destroyed, per the paper)."""
        index = len(self.workers)
        proc = self._spawn(self._worker_loop(), f"{self.name}.t{index}")
        self.workers.append(proc)

    def _worker_loop(self) -> Generator[Any, Any, None]:
        while True:
            try:
                msg = yield from self.port.receive()
            except ProcessKilled:  # pragma: no cover - kill path
                raise
            self.busy += 1
            try:
                yield from self.handler(msg)
            finally:
                self.busy -= 1
                self.handled += 1

    def kill(self) -> None:
        for proc in self.workers:
            proc.kill()
        self.workers.clear()


class RwLock:
    """Shared/exclusive lock using condition-variable waiting.

    Matches the paper's "rw-lock" package: readers share, writers
    exclude, and waiting sleeps on a condition variable instead of
    spinning — "resulting in considerable CPU savings if a thread must
    wait for a lock for an extended period".  Writer-priority: once a
    writer is queued, new readers wait, preventing writer starvation.
    """

    def __init__(self, kernel: Kernel, name: str = "rwlock"):
        self.kernel = kernel
        self.name = name
        self._mutex = SimLock(kernel, name=f"{name}.mutex")
        self._readers_ok = Condition(kernel, self._mutex, name=f"{name}.rok")
        self._writers_ok = Condition(kernel, self._mutex, name=f"{name}.wok")
        self.active_readers = 0
        self.active_writer = False
        self.waiting_writers = 0

    def acquire_read(self) -> Generator[Any, Any, None]:
        yield from self._mutex.acquire()
        while self.active_writer or self.waiting_writers > 0:
            yield from self._readers_ok.wait()
        self.active_readers += 1
        self._mutex.release()

    def release_read(self) -> Generator[Any, Any, None]:
        yield from self._mutex.acquire()
        if self.active_readers <= 0:
            self._mutex.release()
            raise RuntimeError(f"release_read with no readers on {self.name}")
        self.active_readers -= 1
        if self.active_readers == 0:
            self._writers_ok.signal()
        self._mutex.release()

    def acquire_write(self) -> Generator[Any, Any, None]:
        yield from self._mutex.acquire()
        self.waiting_writers += 1
        while self.active_writer or self.active_readers > 0:
            yield from self._writers_ok.wait()
        self.waiting_writers -= 1
        self.active_writer = True
        self._mutex.release()

    def release_write(self) -> Generator[Any, Any, None]:
        yield from self._mutex.acquire()
        if not self.active_writer:
            self._mutex.release()
            raise RuntimeError(f"release_write with no writer on {self.name}")
        self.active_writer = False
        if self.waiting_writers > 0:
            self._writers_ok.signal()
        else:
            self._readers_ok.broadcast()
        self._mutex.release()


class LockHierarchy:
    """Deadlock avoidance by lock ordering (the paper's "classic" method).

    Locks are registered with a level; a thread recording its held locks
    through a :class:`HierarchyGuard` may only acquire strictly
    increasing levels.  Violations raise immediately — in the simulation
    we would rather fail loudly than deadlock silently.
    """

    def __init__(self) -> None:
        self._levels: dict[int, int] = {}

    def register(self, lock: SimLock, level: int) -> SimLock:
        self._levels[id(lock)] = level  # lint: bounded(one entry per static lock level)
        return lock

    def level_of(self, lock: SimLock) -> int:
        try:
            return self._levels[id(lock)]
        except KeyError:
            raise RuntimeError(f"lock {lock.name!r} not in hierarchy") from None

    def guard(self) -> "HierarchyGuard":
        return HierarchyGuard(self)


class HierarchyGuard:
    """Per-thread tracker enforcing ascending acquisition order."""

    def __init__(self, hierarchy: LockHierarchy):
        self._hierarchy = hierarchy
        self._held: list[tuple[int, SimLock]] = []

    def acquire(self, lock: SimLock, owner: Any = None) -> Generator[Any, Any, None]:
        level = self._hierarchy.level_of(lock)
        if self._held and self._held[-1][0] >= level:
            held_names = [l.name for _, l in self._held]
            raise RuntimeError(
                f"lock-order violation: acquiring {lock.name!r} (level {level}) "
                f"while holding {held_names}"
            )
        yield from lock.acquire(owner=owner)
        self._held.append((level, lock))

    def release(self, lock: SimLock) -> None:
        for i, (_, held) in enumerate(self._held):
            if held is lock:
                del self._held[i]
                lock.release()
                return
        raise RuntimeError(f"releasing {lock.name!r} that guard does not hold")

    def release_all(self) -> None:
        while self._held:
            _, lock = self._held.pop()
            lock.release()
