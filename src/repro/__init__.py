"""repro: a reproduction of Duchamp's *Analysis of Transaction
Management Performance* (SOSP 1989) — the Camelot transaction manager —
on a calibrated discrete-event substrate.

Quick start::

    from repro import CamelotSystem, SystemConfig

    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@b", "x", 42)
        outcome = yield from app.commit(tid)
        return outcome

    print(system.run_process(workload()))   # Outcome.COMMITTED

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured comparison of every table and figure.
"""

from repro.config import (
    CostModel,
    SystemConfig,
    rt_pc_profile,
    vax_mp_profile,
)
from repro.core.outcomes import Outcome, ProtocolKind, TwoPhaseVariant, Vote
from repro.core.quorum import QuorumSpec
from repro.core.tid import TID
from repro.servers.application import Application, TransactionAborted
from repro.system import CamelotSystem, SiteRuntime

__version__ = "1.0.0"

__all__ = [
    "Application",
    "CamelotSystem",
    "CostModel",
    "Outcome",
    "ProtocolKind",
    "QuorumSpec",
    "SiteRuntime",
    "SystemConfig",
    "TID",
    "TransactionAborted",
    "TwoPhaseVariant",
    "Vote",
    "__version__",
    "rt_pc_profile",
    "vax_mp_profile",
]
