#!/usr/bin/env python3
"""Non-blocking commit: surviving a coordinator crash.

Runs the same 3-site transaction twice, crashing the coordinator at the
worst possible moment each time:

- with **two-phase commit**, the prepared subordinates are *blocked*:
  locks held, inquiries unanswered, until the coordinator recovers;
- with the **non-blocking protocol**, a timed-out subordinate becomes a
  coordinator (paper §3.3, change 2), polls the survivors, completes an
  abort or commit quorum, and everyone moves on.

Run:  python examples/nonblocking_failover.py
"""

from repro import CamelotSystem, ProtocolKind, SystemConfig


def run_scenario(protocol: ProtocolKind, crash_at: float) -> None:
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1, "c": 1}))
    app = system.application("a")
    state = {}

    def workload():
        tid = yield from app.begin(protocol=protocol)
        state["tid"] = str(tid)
        for service in system.default_services():
            yield from app.write(tid, service, "x", 1)
        try:
            outcome = yield from app.commit(tid, protocol=protocol)
            state["outcome"] = outcome.value
        except BaseException:
            state["outcome"] = "lost with the coordinator"

    system.spawn(workload(), name="txn")
    system.failures.crash_at(crash_at, "a")
    system.run_for(30_000.0)

    tid = state["tid"]
    print(f"\n=== {protocol.value}, coordinator crashed at "
          f"t={crash_at:.0f} ms ===")
    for site in ("b", "c"):
        tomb = system.tranman(site).tombstones.get(tid)
        locks = system.server(f"server0@{site}").locks.locked_objects()
        status = tomb.value if tomb else "IN DOUBT (blocked)"
        lock_note = f", locks held on {locks}" if locks else ", locks free"
        print(f"  site {site}: {status}{lock_note}")
    inquiries = system.tracer.count("2pc.blocked_inquiry")
    takeovers = system.tracer.count("tranman.takeover")
    if inquiries:
        print(f"  {inquiries} unanswered blocked-subordinate inquiries")
    if takeovers:
        print(f"  {takeovers} subordinate takeover(s) resolved the fate")


def main() -> None:
    # Crash inside 2PC's window of vulnerability: subs prepared, no one
    # knows the outcome.  (Timings per the RT-PC calibration.)
    run_scenario(ProtocolKind.TWO_PHASE, crash_at=138.0)
    # Same instant for the non-blocking protocol: survivors abort.
    run_scenario(ProtocolKind.NON_BLOCKING, crash_at=138.0)
    # Crash after the replication phase: survivors finish the COMMIT.
    run_scenario(ProtocolKind.NON_BLOCKING, crash_at=195.0)
    print("\nThe non-blocking protocol pays ~1.5x the latency (4 log "
          "forces + 5 messages vs 2 + 3)\nfor exactly this: no single "
          "failure can strand anyone holding locks.")


if __name__ == "__main__":
    main()
