#!/usr/bin/env python3
"""Throughput tuning: threads and group commit (paper Figures 4-5).

Sweeps the two knobs the paper's §4.4 experiments turn — TranMan thread
count and group commit — on the VAX-multiprocessor profile, and prints
the resulting update/read TPS curves.  The story to look for:

- updates without group commit flatten at the log disk's write rate
  ("the logger is the bottleneck");
- group commit batches concurrent commit records and lifts the ceiling;
- a single TranMan thread is a bottleneck all by itself;
- 20 threads buy nothing over 5 — "barely sufficient" already suffices.

Run:  python examples/throughput_tuning.py     (takes ~half a minute)
"""

from repro.bench.experiment import measure_throughput


def sweep(op: str, configs) -> None:
    print(f"\n{op.upper()} transactions (TPS by app/server pairs)")
    header = "  {:<28s}" + " {:>7s}" * 4
    print(header.format("config", "1", "2", "3", "4"))
    for label, threads, gc in configs:
        tps = []
        for pairs in (1, 2, 3, 4):
            result = measure_throughput(pairs, threads, gc, op=op,
                                        duration_ms=6_000.0)
            tps.append(result.tps)
        row = "  {:<28s}" + " {:>7.1f}" * 4
        print(row.format(label, *tps))


def main() -> None:
    sweep("write", [
        ("group commit, 20 threads", 20, True),
        ("no batching, 20 threads", 20, False),
        ("no batching, 5 threads", 5, False),
        ("no batching, 1 thread", 1, False),
    ])
    sweep("read", [
        ("20 threads", 20, False),
        ("5 threads", 5, False),
        ("1 thread", 1, False),
    ])
    print("\npaper Figure 4: group commit on top, 1 thread flat;"
          "\npaper Figure 5: 1 thread 'accommodates more than 1 client"
          " but not more than 2'.")


if __name__ == "__main__":
    main()
