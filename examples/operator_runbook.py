#!/usr/bin/env python3
"""Operator runbook: the day-2 tools around the protocols.

Three situations an operator of a Camelot-like facility hits, and the
mechanisms this library provides for them:

1. **A blocked transaction** (2PC coordinator lost): resolve it
   heuristically — locks release now, and the system *reports damage*
   if the guess turns out wrong when the coordinator returns.
2. **An unbounded log**: take a fuzzy checkpoint; committed history is
   reclaimed, in-flight transactions keep their records.
3. **A deadlock**: the lock-wait timeout picks a victim; the victim's
   application retries and everyone makes progress.

Run:  python examples/operator_runbook.py
"""

from repro import (
    CamelotSystem,
    Outcome,
    SystemConfig,
    TransactionAborted,
)


def blocked_transaction_demo() -> None:
    print("=== 1. Resolving a blocked transaction heuristically ===")
    system = CamelotSystem(SystemConfig(sites={"hq": 1, "branch": 1}))
    app = system.application("hq")
    state = {}

    def workload():
        tid = yield from app.begin()
        state["tid"] = tid
        yield from app.write(tid, "server0@hq", "ledger", 100)
        yield from app.write(tid, "server0@branch", "ledger", 100)
        yield from app.commit(tid)

    system.spawn(workload(), name="txn")
    system.failures.crash_at(95.0, "hq")   # dies in the 2PC window
    system.run_for(6_000.0)
    branch = system.server("server0@branch")
    print(f"  branch blocked, locks held on {branch.locks.locked_objects()}")

    # Operator decision: business says this transfer happened — commit.
    system.tranman("branch").heuristic_resolve(state["tid"],
                                               Outcome.COMMITTED)
    system.run_for(1_000.0)
    print(f"  after heuristic commit: locks {branch.locks.locked_objects()},"
          f" ledger={branch.peek('ledger')}")

    # The coordinator returns with no commit record: presumed abort.
    system.failures.restart_at(system.kernel.now + 100.0, "hq")
    system.run_for(20_000.0)
    damage = system.tracer.count("2pc.heuristic_damage")
    print(f"  coordinator recovered; heuristic damage reports: {damage}")
    print("  (the guess was wrong -- the exposure is reported, exactly "
          "as LU 6.2's heuristic commit behaves)\n")


def checkpoint_demo() -> None:
    print("=== 2. Bounding the log with checkpoints ===")
    system = CamelotSystem(SystemConfig(sites={"hq": 1}))
    app = system.application("hq")

    def burst():
        for i in range(8):
            tid = yield from app.begin()
            yield from app.write(tid, "server0@hq", "counter", i)
            yield from app.commit(tid)

    system.run_process(burst())
    system.run_for(500.0)
    store = system.stores.for_site("hq")
    print(f"  log after 8 transactions: {len(store)} records")

    rt = system.runtime("hq")

    def take_checkpoint():
        reclaimed = yield from rt.diskman.checkpoint(
            rt.servers, tombstones=rt.tranman.tombstones)
        return reclaimed

    reclaimed = system.run_process(take_checkpoint())
    print(f"  checkpoint reclaimed {reclaimed} records; "
          f"log now {len(store)} records")
    system.crash_site("hq")
    system.restart_site("hq")
    system.run_for(1_000.0)
    print(f"  recovery from checkpoint: counter="
          f"{system.server('server0@hq').peek('counter')} (expected 7)\n")


def deadlock_demo() -> None:
    print("=== 3. Deadlock: the timeout picks a victim ===")
    system = CamelotSystem(
        SystemConfig(sites={"hq": 1}).with_cost(lock_wait_timeout=400.0))
    log = []

    def worker(name, first, second):
        app = system.application("hq", name=name)
        attempts = 0
        while attempts < 3:
            attempts += 1
            try:
                tid = yield from app.begin()
                yield from app.write(tid, "server0@hq", first, name)
                yield from app.write(tid, "server0@hq", second, name)
                yield from app.commit(tid)
                log.append(f"{name} committed (attempt {attempts})")
                return
            except TransactionAborted:
                log.append(f"{name} chosen as victim, retrying")

    system.spawn(worker("alice", "x", "y"), name="alice")
    system.spawn(worker("bob", "y", "x"), name="bob")
    system.run_for(30_000.0)
    for line in log:
        print(f"  {line}")
    assert sum("committed" in line for line in log) == 2


if __name__ == "__main__":
    blocked_transaction_demo()
    checkpoint_demo()
    deadlock_demo()
