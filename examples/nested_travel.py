#!/usr/bin/env python3
"""Nested transactions: a travel booking with partial failure.

The classic Moss-model scenario the paper's nesting support exists for:
book a flight and a hotel inside one top-level transaction, each
attempt in its own subtransaction.  The first hotel is full — that
subtransaction aborts *alone*, undoing only its own updates, and a
second hotel is tried.  The top-level commit then makes the whole
itinerary permanent atomically.

Run:  python examples/nested_travel.py
"""

from repro import CamelotSystem, Outcome, SystemConfig


def main() -> None:
    system = CamelotSystem(
        SystemConfig(sites={"airline": 1, "hotels": 1}),
        initial_objects={
            "server0@airline": {"CM402_seats": 3},
            "server0@hotels": {"grand_rooms": 0, "plaza_rooms": 5},
        })
    app = system.application("airline")

    def book_trip():
        trip = yield from app.begin()
        print(f"trip transaction {trip}")

        # --- subtransaction 1: the flight -------------------------
        flight = yield from app.begin(parent=trip)
        seats = yield from app.read(flight, "server0@airline",
                                    "CM402_seats")
        yield from app.write(flight, "server0@airline", "CM402_seats",
                             seats - 1)
        yield from app.write(flight, "server0@airline", "CM402_passenger",
                             "duchamp")
        yield from app.commit(flight)
        print(f"  flight booked (subtransaction {flight})")

        # --- subtransaction 2: first-choice hotel, which is full ---
        grand = yield from app.begin(parent=trip)
        rooms = yield from app.read(grand, "server0@hotels", "grand_rooms")
        if rooms and rooms > 0:
            yield from app.write(grand, "server0@hotels", "grand_rooms",
                                 rooms - 1)
            yield from app.commit(grand)
        else:
            # Abort ONLY this subtransaction: the flight booking above
            # survives, untouched.
            yield from app.abort(grand)
            print(f"  Grand Hotel full -> aborted {grand} "
                  "(flight unaffected)")

        # --- subtransaction 3: the fallback hotel -------------------
        plaza = yield from app.begin(parent=trip)
        rooms = yield from app.read(plaza, "server0@hotels", "plaza_rooms")
        yield from app.write(plaza, "server0@hotels", "plaza_rooms",
                             rooms - 1)
        yield from app.write(plaza, "server0@hotels", "plaza_guest",
                             "duchamp")
        yield from app.commit(plaza)
        print(f"  Plaza booked (subtransaction {plaza})")

        # --- top-level commit: the whole trip becomes permanent -----
        outcome = yield from app.commit(trip)
        return outcome

    outcome = system.run_process(book_trip())
    assert outcome is Outcome.COMMITTED
    system.run_for(1_000.0)

    airline = system.server("server0@airline")
    hotels = system.server("server0@hotels")
    print("\nfinal state:")
    print(f"  CM402 seats left : {airline.peek('CM402_seats')} (was 3)")
    print(f"  CM402 passenger  : {airline.peek('CM402_passenger')}")
    print(f"  Grand rooms      : {hotels.peek('grand_rooms')} (never taken)")
    print(f"  Plaza rooms      : {hotels.peek('plaza_rooms')} (was 5)")
    print(f"  Plaza guest      : {hotels.peek('plaza_guest')}")
    assert airline.peek("CM402_seats") == 2
    assert hotels.peek("grand_rooms") == 0
    assert hotels.peek("plaza_rooms") == 4


if __name__ == "__main__":
    main()
