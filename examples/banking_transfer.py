#!/usr/bin/env python3
"""Banking: distributed transfers with aborts and crash recovery.

The motivating workload for transactional facilities: move money
between accounts on different sites, atomically.  Demonstrates:

- a committed cross-site transfer,
- an application-initiated abort (insufficient funds) that undoes the
  partial debit everywhere,
- a site crash *after* commit: the committed balance survives recovery,
- a site crash *during* a transfer: atomicity holds — either both
  account updates survive or neither does.

Run:  python examples/banking_transfer.py
"""

from repro import CamelotSystem, Outcome, SystemConfig
from repro.bench.workloads import transfer


def balances(system):
    east = system.server("server0@east")
    west = system.server("server0@west")
    return east.peek("alice"), west.peek("bob")


def main() -> None:
    system = CamelotSystem(
        SystemConfig(sites={"east": 1, "west": 1}),
        initial_objects={"server0@east": {"alice": 100},
                         "server0@west": {"bob": 20}})
    app = system.application("east")

    # ------------------------------------------------ 1. a good transfer
    def good_transfer():
        tid = yield from app.begin()
        ok = yield from transfer(app, tid, "server0@east", "alice",
                                 "server0@west", "bob", 30)
        assert ok
        outcome = yield from app.commit(tid)
        return outcome

    outcome = system.run_process(good_transfer())
    print(f"transfer of 30: {outcome.value};  alice/bob = {balances(system)}")
    assert balances(system) == (70, 50)

    # ------------------------------------- 2. insufficient funds: abort
    def overdraft():
        tid = yield from app.begin()
        ok = yield from transfer(app, tid, "server0@east", "alice",
                                 "server0@west", "bob", 500)
        if not ok:
            yield from app.abort(tid)
            return Outcome.ABORTED
        return (yield from app.commit(tid))

    outcome = system.run_process(overdraft())
    system.run_for(1_000.0)
    print(f"transfer of 500: {outcome.value}; alice/bob = {balances(system)}")
    assert balances(system) == (70, 50)

    # -------------------------------- 3. crash after commit: durability
    system.crash_site("west")
    system.restart_site("west")
    system.run_for(2_000.0)
    print(f"after west crash+recovery:       alice/bob = {balances(system)}")
    assert balances(system) == (70, 50)

    # ------------------------- 4. crash mid-transfer: atomicity holds
    state = {}

    def doomed_transfer():
        tid = yield from app.begin()
        try:
            yield from transfer(app, tid, "server0@east", "alice",
                                "server0@west", "bob", 10)
            outcome = yield from app.commit(tid)
            state["outcome"] = outcome
        except BaseException:
            state["outcome"] = None

    system.spawn(doomed_transfer(), name="doomed")
    system.failures.crash_at(system.kernel.now + 95.0, "west")
    system.failures.restart_at(system.kernel.now + 5_000.0, "west")
    system.run_for(60_000.0)
    alice, bob = balances(system)
    print(f"crash mid-transfer ->            alice/bob = {(alice, bob)} "
          f"(outcome: {state['outcome']})")
    # Atomic: either the transfer fully applied or fully didn't.
    assert (alice, bob) in ((70, 50), (60, 60)), (alice, bob)
    assert alice + bob == 120
    print("atomicity held: no money created or destroyed.")


if __name__ == "__main__":
    main()
