#!/usr/bin/env python3
"""Trace timelines: watch the protocols happen, event by event.

Regenerates the paper's Figure 1 walk-through ("Execution of a
Transaction") from live traces: first a two-phase commit, then a
non-blocking commit whose coordinator crashes mid-protocol — you can
watch the subordinate time out, take over, form the quorum, and decide.

Run:  python examples/trace_timeline.py
"""

from repro import CamelotSystem, ProtocolKind, SystemConfig
from repro.bench.timeline import render_timeline


def twophase_timeline() -> None:
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "x", 1)
        yield from app.write(tid, "server0@b", "x", 2)
        yield from app.commit(tid)

    system.run_process(workload())
    system.run_for(100.0)
    print("=== Two-phase commit, 1 subordinate "
          "(compare: paper Figure 1) ===")
    print(render_timeline(system.tracer, ["a", "b"]))


def nonblocking_failover_timeline() -> None:
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1, "c": 1}))
    app = system.application("a")

    def workload():
        tid = yield from app.begin(protocol=ProtocolKind.NON_BLOCKING)
        for s in system.default_services():
            yield from app.write(tid, s, "x", 1)
        try:
            yield from app.commit(tid, protocol=ProtocolKind.NON_BLOCKING)
        except BaseException:
            pass

    system.spawn(workload(), name="txn")
    system.failures.crash_at(193.0, "a")
    system.run_for(12_000.0)
    print("\n=== Non-blocking commit: coordinator crashes after the "
          "replication phase ===")
    print(render_timeline(system.tracer, ["a", "b", "c"], t1=8_000.0))


if __name__ == "__main__":
    twophase_timeline()
    nonblocking_failover_timeline()
