#!/usr/bin/env python3
"""Quickstart: one distributed transaction, start to finish.

Builds a two-site Camelot deployment, runs a transaction that updates
data on both sites, commits it with two-phase commit, and shows the
paper's headline accounting: two log forces and three protocol
datagrams on the critical path.

Run:  python examples/quickstart.py
"""

from repro import CamelotSystem, Outcome, SystemConfig


def main() -> None:
    system = CamelotSystem(SystemConfig(sites={"paris": 1, "tokyo": 1}))
    app = system.application("paris")

    def workload():
        # Begin: get a transaction identifier from the TranMan.
        tid = yield from app.begin()
        print(f"begun       {tid}")

        # Operations: synchronous calls to data servers, local and
        # remote; every operation explicitly lists the TID.
        yield from app.write(tid, "server0@paris", "balance", 100)
        yield from app.write(tid, "server0@tokyo", "balance", 250)
        print(f"updated     both sites at t={system.kernel.now:.1f} ms")

        # Commit: the TranMan runs presumed-abort 2PC with the paper's
        # delayed-commit optimization.
        outcome = yield from app.commit(tid)
        print(f"outcome     {outcome.value} at t={system.kernel.now:.1f} ms")
        return outcome

    before = system.tracer.snapshot()
    outcome = system.run_process(workload())
    delta = system.tracer.delta(before, system.tracer.snapshot())

    assert outcome is Outcome.COMMITTED
    print(f"paris  sees balance = {system.server('server0@paris').peek('balance')}")
    print(f"tokyo  sees balance = {system.server('server0@tokyo').peek('balance')}")
    print(f"log forces on the critical path : {delta.get('diskman.force', 0)}"
          " (paper: 2 — subordinate prepare + coordinator commit)")
    print(f"protocol datagrams              : {delta.get('tranman.datagram', 0)}"
          " (paper: 3 — prepare, vote, commit)")
    lat = app.latencies_ms()[0]
    print(f"transaction latency             : {lat:.1f} ms"
          " (paper measured 110 ms for this shape)")


if __name__ == "__main__":
    main()
