"""Regression tests for defects found in code review."""

import pytest

from repro import (
    CamelotSystem,
    Outcome,
    ProtocolKind,
    SystemConfig,
    TransactionAborted,
)


def test_throughput_excludes_aborted_transactions():
    """measure_throughput must count commits, not resolutions."""
    from repro.bench.experiment import measure_throughput

    # A clean run: committed count equals history's committed entries.
    result = measure_throughput(1, 5, False, duration_ms=2_000.0,
                                warmup_ms=200.0)
    assert result.committed > 0
    # The invariant is structural: the counter requires COMMITTED.
    import inspect

    src = inspect.getsource(measure_throughput)
    assert "Outcome.COMMITTED" in src


def test_abort_after_decision_fails_cleanly():
    """abort-transaction racing a finished commit must answer, not hang."""
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "x", 1)
        yield from app.commit(tid)
        # The transaction is decided and forgotten: a late abort fails.
        with pytest.raises(TransactionAborted):
            yield from app.abort(tid)
        return "answered"

    assert system.run_process(workload()) == "answered"


def test_abort_during_nb_replication_fails_cleanly_not_crash():
    """An application abort once the replication phase has begun must be
    refused with a reply — never a protocol violation escaping the
    TranMan (which would kill the whole run)."""
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1, "c": 1}))
    app = system.application("a")
    state = {}

    def committer():
        tid = yield from app.begin(protocol=ProtocolKind.NON_BLOCKING)
        state["tid"] = tid
        for s in system.default_services():
            yield from app.write(tid, s, "x", 1)
        outcome = yield from app.commit(tid,
                                        protocol=ProtocolKind.NON_BLOCKING)
        state["outcome"] = outcome

    app2 = system.application("a", name="aborter")

    def aborter():
        from repro.sim.process import Sleep

        # Land inside the replication phase (~165-195 ms).
        yield Sleep(180.0)
        try:
            yield from app2.abort(state["tid"])
            state["abort"] = "accepted"
        except TransactionAborted as exc:
            state["abort"] = f"refused: {exc.reason}"

    system.spawn(committer(), name="committer")
    system.spawn(aborter(), name="aborter")
    system.run_for(30_000.0)
    # The commit finished (whatever the abort attempt said)...
    assert state.get("outcome") in (Outcome.COMMITTED, Outcome.ABORTED)
    # ...and the abort call got an answer rather than crashing/hanging.
    assert "abort" in state


def test_local_operation_timeout_honored():
    """A timeout on a local operation must fire (dead local server)."""
    system = CamelotSystem(SystemConfig(sites={"a": 2}))
    app = system.application("a")
    # Kill just the server's handler threads (not the whole site), so
    # the port accepts mail that is never answered.
    server = system.server("server1@a")
    server.pool.kill()

    def workload():
        tid = yield from app.begin()
        with pytest.raises(TransactionAborted):
            yield from app.write(tid, "server1@a", "x", 1, timeout=300.0)
        return "timed out cleanly"

    assert system.run_process(workload(),
                              timeout_ms=30_000.0) == "timed out cleanly"


def test_checkpoint_preserves_committed_none():
    """An object committed with value None survives checkpoint+recovery
    as None (not resurrected to a stale value)."""
    system = CamelotSystem(SystemConfig(sites={"a": 1}),
                           initial_objects={"server0@a": {"flag": "set"}})
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "flag", None)
        yield from app.commit(tid)

    system.run_process(workload())
    system.run_for(500.0)
    rt = system.runtime("a")

    def ckpt():
        yield from rt.diskman.checkpoint(rt.servers)

    system.run_process(ckpt())
    system.crash_site("a")
    system.restart_site("a")
    system.run_for(1_000.0)
    assert system.server("server0@a").peek("flag") is None
