"""The analytic throughput model vs. the simulation (Figures 4-5).

Like the paper's latency static analysis, the model is approximate —
the tests require (a) the right bottleneck story and curve ordering,
and (b) agreement with the simulation within a generous band.
"""

import pytest

from repro.analysis.throughput_model import predict
from repro.bench.experiment import measure_throughput


def test_update_bottleneck_story():
    """1 pair: offered-load bound.  4 pairs unbatched: logger bound.
    1 thread: TranMan bound.  Group commit: lifts the logger ceiling."""
    assert predict(1, 20, False).bottleneck == "offered"
    assert predict(4, 20, False).bottleneck == "logger"
    assert predict(4, 1, False).bottleneck == "tranman_threads"
    assert predict(4, 20, True).disk_ceiling_tps \
        > predict(4, 20, False).disk_ceiling_tps


def test_read_bottleneck_story():
    """Reads never touch the logger; one thread saturates around two
    clients (the paper's claim, as a model property)."""
    assert predict(4, 20, False, op="read").disk_ceiling_tps == float("inf")
    one_thread = [predict(n, 1, False, op="read").tps for n in (1, 2, 3, 4)]
    # Gains flatten: from 2 pairs on, the thread ceiling binds.
    assert one_thread[1] > one_thread[0] * 1.3
    assert one_thread[3] < one_thread[1] * 1.15
    assert predict(3, 1, False, op="read").bottleneck == "tranman_threads"


def test_model_curve_ordering_matches_figure4():
    for pairs in (1, 2, 3, 4):
        gc = predict(pairs, 20, True).tps
        plain = predict(pairs, 20, False).tps
        single = predict(pairs, 1, False).tps
        assert single <= plain + 1e-9
    # At saturation, group commit wins.
    assert predict(4, 20, True).tps > predict(4, 20, False).tps


@pytest.mark.parametrize("pairs,threads,gc,op", [
    (1, 20, False, "write"),
    (4, 20, False, "write"),
    (4, 20, True, "write"),
    (4, 1, False, "write"),
    (1, 1, False, "read"),
    (3, 1, False, "read"),
    (4, 20, False, "read"),
])
def test_model_within_40_percent_of_simulation(pairs, threads, gc, op):
    predicted = predict(pairs, threads, gc, op=op).tps
    simulated = measure_throughput(pairs, threads, gc, op=op,
                                   duration_ms=6_000.0).tps
    assert simulated > 0
    ratio = predicted / simulated
    assert 0.6 <= ratio <= 1.4, (
        f"pairs={pairs} threads={threads} gc={gc} op={op}: "
        f"predicted {predicted:.1f}, simulated {simulated:.1f}")
