"""Parallel runner + result cache: equivalence and determinism.

Determinism is a core repo invariant (DESIGN.md §5): every cell builds a
fresh seeded system, so the same cell must produce the same `Summary`
whether it runs in-process, in a worker process, or is restored from the
on-disk cache.  These tests run real Figure 2 / Figure 4 cells at
reduced trial counts through all three paths and require identical
results.
"""

from __future__ import annotations

import pytest

import repro.bench.parallel as parallel
from repro.bench.cache import ResultCache, cost_model_fingerprint
from repro.bench.figures import figure2, figure2_cells, figure4, figure4_cells
from repro.bench.parallel import (
    Cell,
    cell_values,
    latency_cell,
    run_cells,
    throughput_cell,
)

FIG2_CELLS = lambda: [c for _, _, c in figure2_cells(trials=3,
                                                     subs_range=(0, 1))]
FIG4_CELLS = lambda: [c for _, c in figure4_cells(pairs_range=(1, 2),
                                                  duration_ms=1_200.0)]


# -------------------------------------------------------- cell basics


def test_cell_is_hashable_and_order_insensitive():
    a = latency_cell(n_subs=1, op="read", trials=5)
    b = Cell.make("measure_latency", trials=5, op="read", n_subs=1)
    assert a == b
    assert hash(a) == hash(b)
    assert a != latency_cell(n_subs=2, op="read", trials=5)


def test_unknown_cell_function_rejected():
    with pytest.raises(KeyError):
        Cell.make("not_a_registered_function", x=1)


def test_outcomes_keep_input_order():
    # Results must be keyed by cell spec, not completion order: a slow
    # cell first must not displace a fast cell's slot.
    slow = latency_cell(n_subs=1, op="write", trials=6)
    fast = latency_cell(n_subs=0, op="read", trials=2)
    outcomes = run_cells([slow, fast, slow], jobs=1)
    assert [o.cell for o in outcomes] == [slow, fast, slow]
    assert outcomes[0].value.summary == outcomes[2].value.summary
    assert all(o.elapsed_s >= 0.0 for o in outcomes)


# ------------------------------------------- serial/parallel equality


def test_figure2_cells_parallel_equals_serial():
    cells = FIG2_CELLS()
    serial = cell_values(run_cells(cells, jobs=1))
    fanned = cell_values(run_cells(cells, jobs=2))
    # LatencyResult and its Summary are dataclasses: == is field-exact,
    # so this asserts bit-identical means/stdevs, not approximations.
    assert serial == fanned


def test_figure4_cells_parallel_equals_serial():
    cells = FIG4_CELLS()
    serial = cell_values(run_cells(cells, jobs=1))
    fanned = cell_values(run_cells(cells, jobs=2))
    assert serial == fanned


def test_figure2_function_identical_across_jobs():
    a = figure2(trials=2, subs_range=(0, 1), jobs=1)
    b = figure2(trials=2, subs_range=(0, 1), jobs=2)
    assert set(a) == set(b)
    for label in a:
        assert a[label].points == b[label].points


def test_pool_failure_falls_back_to_serial(monkeypatch):
    def boom(cells, jobs):
        raise OSError("no process pool on this platform")

    monkeypatch.setattr(parallel, "_run_pool", boom)
    cells = [latency_cell(n_subs=0, op="read", trials=2)] * 2
    outcomes = run_cells(cells, jobs=4)
    assert len(outcomes) == 2
    assert outcomes[0].value.summary == outcomes[1].value.summary


# ------------------------------------------------------- result cache


def test_warm_cache_returns_identical_values(tmp_path):
    cells = FIG2_CELLS()
    cache = ResultCache(root=tmp_path / "cache")
    cold = run_cells(cells, jobs=1, cache=cache)
    assert not any(o.cached for o in cold)
    warm = run_cells(cells, jobs=1, cache=cache)
    assert all(o.cached for o in warm)
    assert cell_values(cold) == cell_values(warm)
    # And a parallel run against the same warm cache computes nothing.
    warm2 = run_cells(cells, jobs=2, cache=cache)
    assert all(o.cached for o in warm2)
    assert cell_values(warm2) == cell_values(cold)


def test_figure4_warm_cache_identical(tmp_path):
    cells = FIG4_CELLS()
    cache = ResultCache(root=tmp_path / "cache")
    cold = cell_values(run_cells(cells, jobs=2, cache=cache))
    warm = cell_values(run_cells(cells, jobs=1, cache=cache))
    assert cold == warm
    assert cache.hits == len(cells)


def test_figure4_function_identical_across_paths(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    serial = figure4(pairs_range=(1,), duration_ms=1_000.0, jobs=1)
    cached_cold = figure4(pairs_range=(1,), duration_ms=1_000.0,
                          jobs=2, cache=cache)
    cached_warm = figure4(pairs_range=(1,), duration_ms=1_000.0, cache=cache)
    for label in serial:
        assert serial[label].points == cached_cold[label].points
        assert serial[label].points == cached_warm[label].points


def test_cache_key_covers_spec_and_cost_model(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    a = latency_cell(n_subs=1, op="read", trials=5)
    b = latency_cell(n_subs=1, op="read", trials=6)
    assert cache.key(a) != cache.key(b)
    assert cache.key(a) == cache.key(latency_cell(trials=5, op="read",
                                                  n_subs=1))
    # A changed cost-model constant moves every key (stale physics must
    # never be served).
    cache._fingerprint = "different-cost-model"
    assert cache.key(a) != ResultCache(root=tmp_path / "cache").key(a)


def test_cost_model_fingerprint_is_stable():
    assert cost_model_fingerprint() == cost_model_fingerprint()


def test_corrupt_cache_entry_is_recomputed(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    cell = latency_cell(n_subs=0, op="read", trials=2)
    first = run_cells([cell], cache=cache)[0]
    path = cache._path(cache.key(cell))
    path.write_bytes(b"not a pickle")
    again = run_cells([cell], cache=cache)[0]
    assert not again.cached
    assert again.value == first.value


def test_cached_none_distinguished_from_miss(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    cell = latency_cell(n_subs=0, op="read", trials=2)
    cache.put(cell, None)
    hit, value = cache.get(cell)
    assert hit and value is None


def test_cache_clear(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    run_cells([latency_cell(n_subs=0, op="read", trials=2)], cache=cache)
    assert len(cache) == 1
    assert cache.clear() == 1
    assert len(cache) == 0


# ----------------------------------------------------- ablation cells


def test_ablation_cell_roundtrip():
    outcome = run_cells([Cell.make("read_only_ablation", trials=3)])[0]
    assert outcome.value.unoptimized_forces >= outcome.value.optimized_forces


def test_throughput_cell_describe_mentions_args():
    cell = throughput_cell(pairs=2, threads=5, group_commit=False,
                           op="read", duration_ms=500.0)
    text = cell.describe()
    assert "measure_throughput" in text and "pairs=2" in text
