"""Race detector: same-timestamp events from independent causal chains
touching one resource are flagged; deterministically-ordered ones are not."""

from repro.lint.races import RaceDetector, reports_to_findings, scan_for_races
from repro.mach.ports import Port
from repro.sim.kernel import Kernel


def _attach(k: Kernel) -> RaceDetector:
    det = RaceDetector()
    k.monitor = det
    return det


def test_independent_chains_on_one_port_race():
    """Two independent causal chains each land an enqueue on the same
    port at t=10: only global scheduling order breaks the tie."""
    k = Kernel()
    det = _attach(k)
    port = Port(k, "a", name="server0")

    def chain_a():
        k.schedule(5.0, port.enqueue, ("a", "m1"))

    def chain_b():
        k.schedule(5.0, port.enqueue, ("b", "m2"))

    k.schedule(5.0, chain_a)
    k.schedule(5.0, chain_b)
    k.run()
    races = det.finish()
    assert len(races) == 1
    assert "Port server0" in races[0].resource
    assert races[0].time == 10.0


def test_same_parent_siblings_not_a_race():
    """One parent scheduling both enqueues writes the order in its own
    code — a deterministic tie-break, so no race."""
    k = Kernel()
    det = _attach(k)
    port = Port(k, "a", name="server0")

    def parent():
        k.schedule(5.0, port.enqueue, ("a", "m1"))
        k.schedule(5.0, port.enqueue, ("b", "m2"))

    k.schedule(5.0, parent)
    k.run()
    assert det.finish() == []


def test_causally_chained_events_not_a_race():
    """A zero-delay chain (first event schedules the second at the same
    instant) is ordered by causality, not by scheduling accident."""
    k = Kernel()
    det = _attach(k)
    port = Port(k, "a", name="p")

    def first():
        port.enqueue(("a", "m1"))
        k.schedule(0.0, port.enqueue, ("b", "m2"))

    k.schedule(10.0, first)
    k.run()
    assert det.finish() == []


def test_different_resources_not_a_race():
    k = Kernel()
    det = _attach(k)
    p1, p2 = Port(k, "a", name="p1"), Port(k, "a", name="p2")
    k.schedule(5.0, lambda: k.schedule(5.0, p1.enqueue, ("a", "m")))
    k.schedule(5.0, lambda: k.schedule(5.0, p2.enqueue, ("b", "m")))
    k.run()
    assert det.finish() == []


def test_different_times_not_a_race():
    k = Kernel()
    det = _attach(k)
    port = Port(k, "a", name="p")
    k.schedule(5.0, lambda: k.schedule(5.0, port.enqueue, ("a", "m")))
    k.schedule(5.0, lambda: k.schedule(6.0, port.enqueue, ("b", "m")))
    k.run()
    assert det.finish() == []


def test_duplicate_site_pairs_reported_once():
    k = Kernel()
    det = _attach(k)
    port = Port(k, "a", name="p")
    for t in (10.0, 20.0, 30.0):
        k.schedule(t, lambda t=t: k.schedule(5.0, port.enqueue, ("a", "m")))
        k.schedule(t, lambda t=t: k.schedule(5.0, port.enqueue, ("b", "m")))
    k.run()
    # Same (site, site, resource) triple every instant: one report.
    assert len(det.finish()) == 1


def test_reports_convert_to_findings():
    k = Kernel()
    det = _attach(k)
    port = Port(k, "a", name="server0")
    k.schedule(5.0, lambda: k.schedule(5.0, port.enqueue, ("a", "m")))
    k.schedule(5.0, lambda: k.schedule(5.0, port.enqueue, ("b", "m")))
    k.run()
    findings = reports_to_findings(det.finish())
    assert len(findings) == 1
    f = findings[0]
    assert f.rule == "event-race"
    assert f.line > 0
    assert "Port server0" in f.message
    assert f.key  # stable fingerprint input, not the volatile message


def test_detector_counts_every_event():
    k = Kernel()
    det = _attach(k)
    for i in range(7):
        k.schedule(float(i), lambda: None)
    k.run()
    det.finish()
    assert det.events_seen == 7


def test_stock_scenario_scan_runs_clean():
    """The shipped simulation must be race-free: every same-instant
    rendezvous in the protocol stack has a deterministic tie-break."""
    assert scan_for_races(duration_ms=4000.0) == []
