"""Unit + property tests for the Moss-model lock manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tid import TID
from repro.servers.lockmgr import LockManager, LockMode, WouldBlock


T1 = TID("T1@a")
T2 = TID("T2@a")
C1 = T1.child(1)
C2 = T1.child(2)


def test_read_locks_share():
    lm = LockManager()
    assert lm.acquire("x", T1, LockMode.READ)
    assert lm.acquire("x", T2, LockMode.READ)


def test_write_excludes_unrelated():
    lm = LockManager()
    assert lm.acquire("x", T1, LockMode.WRITE)
    granted = []
    assert not lm.acquire("x", T2, LockMode.WRITE,
                          on_grant=lambda: granted.append(True))
    assert lm.waiting_on("x") == [T2]


def test_would_block_without_callback():
    lm = LockManager()
    lm.acquire("x", T1, LockMode.WRITE)
    with pytest.raises(WouldBlock):
        lm.acquire("x", T2, LockMode.WRITE)


def test_read_blocks_on_unrelated_write():
    lm = LockManager()
    lm.acquire("x", T1, LockMode.WRITE)
    assert not lm.acquire("x", T2, LockMode.READ, on_grant=lambda: None)


def test_child_may_acquire_parents_lock():
    """Moss rule: holders that are ancestors do not conflict."""
    lm = LockManager()
    lm.acquire("x", T1, LockMode.WRITE)
    assert lm.acquire("x", C1, LockMode.WRITE)
    assert lm.acquire("x", C1, LockMode.READ)


def test_sibling_conflicts_with_child_holder():
    lm = LockManager()
    lm.acquire("x", C1, LockMode.WRITE)
    assert not lm.acquire("x", C2, LockMode.WRITE, on_grant=lambda: None)


def test_reacquire_same_or_weaker_mode_succeeds():
    lm = LockManager()
    lm.acquire("x", T1, LockMode.WRITE)
    assert lm.acquire("x", T1, LockMode.WRITE)
    assert lm.acquire("x", T1, LockMode.READ)


def test_commit_child_inherits_to_parent_as_retainer():
    lm = LockManager()
    lm.acquire("x", C1, LockMode.WRITE)
    lm.commit_child(C1)
    assert lm.holders_of("x") == {}
    assert lm.retainers_of("x") == {T1: LockMode.WRITE}
    # A sibling still conflicts with the retained lock...
    assert not lm.acquire("x", TID("T2@a"), LockMode.WRITE,
                          on_grant=lambda: None)
    # ...but another child of the retainer does not.
    assert lm.acquire("x", C2, LockMode.WRITE)


def test_commit_child_on_top_level_rejected():
    lm = LockManager()
    with pytest.raises(ValueError):
        lm.commit_child(T1)


def test_abort_subtree_releases_and_wakes_waiters():
    lm = LockManager()
    lm.acquire("x", C1, LockMode.WRITE)
    woken = []
    lm.acquire("x", T2, LockMode.WRITE, on_grant=lambda: woken.append(True))
    lm.abort_subtree(C1)
    assert woken == [True]
    assert lm.holds("x", T2, LockMode.WRITE)


def test_abort_subtree_covers_descendants():
    lm = LockManager()
    grandchild = C1.child(1)
    lm.acquire("x", grandchild, LockMode.WRITE)
    lm.abort_subtree(C1)
    assert lm.holders_of("x") == {}


def test_abort_subtree_drops_queued_requests_of_subtree():
    lm = LockManager()
    lm.acquire("x", T2, LockMode.WRITE)
    lm.acquire("x", C1, LockMode.WRITE, on_grant=lambda: None)
    lm.abort_subtree(T1)
    assert lm.waiting_on("x") == []


def test_release_family_releases_holders_and_retainers():
    lm = LockManager()
    lm.acquire("x", C1, LockMode.WRITE)
    lm.commit_child(C1)       # T1 retains
    lm.acquire("y", T1, LockMode.READ)
    woken = []
    lm.acquire("x", T2, LockMode.WRITE, on_grant=lambda: woken.append(True))
    lm.release_family("T1@a")
    assert woken == [True]
    assert lm.retainers_of("x") == {}
    assert lm.locked_objects() == ["x"]  # only T2's new lock remains


def test_fifo_wakeup_order():
    lm = LockManager()
    lm.acquire("x", T1, LockMode.WRITE)
    order = []
    lm.acquire("x", TID("T2@a"), LockMode.WRITE,
               on_grant=lambda: order.append("T2"))
    lm.acquire("x", TID("T3@a"), LockMode.WRITE,
               on_grant=lambda: order.append("T3"))
    lm.release_family("T1@a")
    assert order == ["T2"]
    lm.release_family("T2@a")
    assert order == ["T2", "T3"]


def test_queued_request_not_jumped_by_compatible_newcomer():
    """A newcomer may not overtake a queued waiter (no starvation)."""
    lm = LockManager()
    lm.acquire("x", T1, LockMode.READ)
    lm.acquire("x", T2, LockMode.WRITE, on_grant=lambda: None)
    # A read would be compatible with the current holder, but the queued
    # writer must not be starved.
    assert not lm.acquire("x", TID("T3@a"), LockMode.READ,
                          on_grant=lambda: None)


def test_holds_reports_mode():
    lm = LockManager()
    lm.acquire("x", T1, LockMode.WRITE)
    assert lm.holds("x", T1)
    assert lm.holds("x", T1, LockMode.READ)   # write implies read
    assert not lm.holds("x", T2)


@settings(max_examples=60)
@given(st.lists(st.tuples(st.sampled_from(["acq_r", "acq_w", "abort",
                                           "release_family"]),
                          st.integers(min_value=0, max_value=3),
                          st.integers(min_value=0, max_value=2)),
                max_size=30))
def test_lock_table_invariants_under_random_ops(ops):
    """Invariant: conflicting holders are always hierarchically related
    (every pair of writers on one object is ancestor-related)."""
    lm = LockManager()
    tids = [TID("T1@a"), TID("T1@a", (1,)), TID("T1@a", (1, 1)),
            TID("T2@a")]
    objs = ["x", "y", "z"]
    for op, tid_i, obj_i in ops:
        tid, obj = tids[tid_i], objs[obj_i]
        if op == "acq_r":
            lm.acquire(obj, tid, LockMode.READ, on_grant=lambda: None)
        elif op == "acq_w":
            lm.acquire(obj, tid, LockMode.WRITE, on_grant=lambda: None)
        elif op == "abort":
            lm.abort_subtree(tid)
        else:
            lm.release_family(tid.family)
        for o in objs:
            holders = lm.holders_of(o)
            writers = [t for t, m in holders.items()
                       if m is LockMode.WRITE]
            for a in writers:
                for b in holders:
                    if a == b:
                        continue
                    assert (a.is_ancestor_of(b) or b.is_ancestor_of(a)), \
                        f"unrelated conflict on {o}: {a} vs {b}"
