"""Live latency attribution vs the paper's static analysis.

The tolerance tests of ISSUE 5: for each canonical scenario the live
critical-path comparable chain must land within tolerance of the static
Table 3 formula, and the per-transaction primitive counts must match the
paper's §4.3 ratios (2 forces / 3 messages for 2PC updates vs 4 forces /
5 messages for non-blocking, counting the on-path messages — the lazy
acks ride after completion).
"""

import pytest

from repro.analysis import static_analysis as sa
from repro.config import SystemConfig
from repro.core.outcomes import Outcome, ProtocolKind
from repro.obs.attribution import (
    attribute_run,
    compare_static,
    render_report,
    report_ok,
)
from repro.obs.spans import SpanRecorder
from repro.system import CamelotSystem

DRAIN_MS = 300.0


def _run(sites, op, protocol, trials=4):
    system = CamelotSystem(SystemConfig(sites=sites, seed=1))
    recorder = SpanRecorder()
    system.tracer.attach_obs(recorder)
    app = system.application("a")
    services = system.default_services()

    def workload():
        for _ in range(trials + 1):  # first transaction is warmup
            yield from app.minimal_transaction(services, op=op,
                                               protocol=protocol)

    system.run_process(workload())
    system.run_for(DRAIN_MS)
    measured = [r for r in app.history[1:]
                if r.outcome is Outcome.COMMITTED]
    assert len(measured) == trials
    assert recorder.balanced
    return system, recorder, measured


def _summary(system, recorder, measured):
    summary = attribute_run(recorder, [str(r.tid) for r in measured])
    assert summary.n == len(measured)
    # Balance invariant, averaged: attributed + gaps == wall.
    assert summary.attributed_ms + summary.gap_ms == \
        pytest.approx(summary.wall_ms)
    return summary


def test_local_update_matches_static_within_10pct():
    system, recorder, measured = _run({"a": 1}, "write",
                                      ProtocolKind.TWO_PHASE)
    summary = _summary(system, recorder, measured)
    comparison = compare_static(summary,
                                sa.local_update_completion(system.cost))
    assert comparison.within(0.10), f"deviation {comparison.deviation:+.1%}"


def test_twophase_1sub_update_matches_static_within_10pct():
    system, recorder, measured = _run({"a": 1, "b": 1}, "write",
                                      ProtocolKind.TWO_PHASE)
    summary = _summary(system, recorder, measured)
    comparison = compare_static(
        summary, sa.twophase_update_completion(1, system.cost))
    assert comparison.within(0.10), f"deviation {comparison.deviation:+.1%}"


def test_local_read_matches_static_within_15pct():
    system, recorder, measured = _run({"a": 1}, "read",
                                      ProtocolKind.TWO_PHASE)
    summary = _summary(system, recorder, measured)
    comparison = compare_static(summary,
                                sa.local_read_completion(system.cost))
    assert comparison.within(0.15), f"deviation {comparison.deviation:+.1%}"


def test_nonblocking_1sub_update_matches_static_within_15pct():
    system, recorder, measured = _run({"a": 1, "b": 1}, "write",
                                      ProtocolKind.NON_BLOCKING)
    summary = _summary(system, recorder, measured)
    comparison = compare_static(
        summary, sa.nonblocking_update_completion(1, system.cost))
    assert comparison.within(0.15), f"deviation {comparison.deviation:+.1%}"


# ------------------------------------------------------------ §4.3 ratios


def _on_path_counts(recorder, record):
    """Per-transaction primitive counts up to the commit point."""
    spans = [s for s in recorder.for_tid(str(record.tid))
             if s.t0 <= record.committed_at]
    forces = [s for s in spans if s.kind == "log.force"]
    datagrams = [s for s in spans
                 if s.kind in ("net.datagram", "net.multicast")]
    return len(forces), len(datagrams)


def test_sec43_two_phase_two_forces_three_messages():
    expected = sa.path_counts("two_phase", "write", 1)
    _, recorder, measured = _run({"a": 1, "b": 1}, "write",
                                 ProtocolKind.TWO_PHASE)
    for record in measured:
        forces, datagrams = _on_path_counts(recorder, record)
        assert forces == expected["log_forces"] == 2
        assert datagrams == expected["datagrams"] == 3


def test_sec43_nonblocking_four_forces_five_messages():
    expected = sa.path_counts("non_blocking", "write", 1)
    _, recorder, measured = _run({"a": 1, "b": 1}, "write",
                                 ProtocolKind.NON_BLOCKING)
    for record in measured:
        forces, datagrams = _on_path_counts(recorder, record)
        assert forces == expected["log_forces"] == 4
        assert datagrams == expected["datagrams"] == 5


def test_sec43_reads_force_nothing():
    _, recorder, measured = _run({"a": 1}, "read", ProtocolKind.TWO_PHASE)
    for record in measured:
        forces, _ = _on_path_counts(recorder, record)
        assert forces == sa.path_counts("two_phase", "read", 0)["log_forces"]
        assert forces == 0


# ---------------------------------------------------------------- reports


def test_render_report_and_exit_predicate():
    system, recorder, measured = _run({"a": 1, "b": 1}, "write",
                                      ProtocolKind.TWO_PHASE)
    summary = _summary(system, recorder, measured)
    static_path = sa.twophase_update_completion(1, system.cost)
    comparison = compare_static(summary, static_path)
    text = render_report(summary, "2PC update, 1 sub",
                         comparison=comparison,
                         static_label=static_path.label, tolerance=0.10,
                         balanced=recorder.balanced)
    assert "critical-path breakdown" in text
    assert "log force" in text
    assert "inter-TranMan datagram" in text
    assert "(unattributed)" in text
    assert "self-checks:" in text and "FAIL" not in text
    assert report_ok(summary, comparison, 0.10, recorder.balanced)


def test_report_not_ok_when_unbalanced_or_off_static():
    system, recorder, measured = _run({"a": 1}, "write",
                                      ProtocolKind.TWO_PHASE)
    summary = _summary(system, recorder, measured)
    comparison = compare_static(summary,
                                sa.local_update_completion(system.cost))
    assert not report_ok(summary, comparison, 0.10, balanced=False)
    # An absurdly tight tolerance must fail the gate.
    assert not report_ok(summary, comparison, 0.0001, recorder.balanced)
    empty = attribute_run(recorder, [])
    assert not report_ok(empty, None, 0.10, True)
