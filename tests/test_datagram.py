"""Unit tests for the TranMan datagram layer."""

from repro.config import rt_pc_profile
from repro.net.datagram import DatagramService
from repro.net.lan import Lan
from repro.sim.kernel import Kernel
from repro.sim.rng import RngStreams
from repro.sim.tracing import Tracer


def build(n=2):
    k = Kernel()
    cost = rt_pc_profile().with_overrides(datagram_send_jitter=0.0,
                                          datagram_jitter_base=0.0,
                                          datagram_jitter_per_load=0.0)
    lan = Lan(k, cost, RngStreams(0), Tracer())
    peers = {}
    services = {}
    for i in range(n):
        name = f"s{i}"
        lan.register_site(name, None)
        services[name] = DatagramService(k, lan, name, Tracer(), peers=peers)
    return k, lan, services


def drain(service):
    items = []
    while True:
        ok, item = service.inbox.try_get()
        if not ok:
            break
        items.append(item)
    return items


def test_send_reaches_destination_inbox():
    k, lan, svc = build()
    svc["s0"].send("s1", "hello")
    k.run()
    got = drain(svc["s1"])
    assert [d.payload for d in got] == ["hello"]
    assert got[0].src == "s0"


def test_loopback_send_skips_the_lan():
    k, lan, svc = build()
    svc["s0"].send("s0", "self")
    k.run()
    assert [d.payload for d in drain(svc["s0"])] == ["self"]
    assert lan.delivered == 0


def test_duplicate_suppression_by_dedup_key():
    k, lan, svc = build()
    svc["s0"].send("s1", "m", dedup_key="k1")
    svc["s0"].send("s1", "m", dedup_key="k1")
    svc["s0"].send("s1", "m2", dedup_key="k2")
    k.run()
    assert len(drain(svc["s1"])) == 2
    assert svc["s1"].duplicates == 1


def test_no_dedup_without_key():
    k, lan, svc = build()
    svc["s0"].send("s1", "m")
    svc["s0"].send("s1", "m")
    k.run()
    assert len(drain(svc["s1"])) == 2


def test_dedup_scoped_per_source():
    k, lan, svc = build(3)
    svc["s0"].send("s2", "m", dedup_key="k")
    svc["s1"].send("s2", "m", dedup_key="k")
    k.run()
    assert len(drain(svc["s2"])) == 2


def test_multicast_reaches_all_and_self():
    k, lan, svc = build(3)
    svc["s0"].multicast(["s0", "s1", "s2"], "announce")
    k.run()
    for name in ("s0", "s1", "s2"):
        assert [d.payload for d in drain(svc[name])] == ["announce"]


def test_reset_clears_dedup_state():
    k, lan, svc = build()
    svc["s0"].send("s1", "m", dedup_key="k")
    k.run()
    drain(svc["s1"])
    svc["s1"].reset()
    svc["s0"].send("s1", "m", dedup_key="k")
    k.run()
    # After a restart the fresh incarnation accepts the "duplicate".
    assert len(drain(svc["s1"])) == 1


def test_dedup_window_bounded():
    k, lan, svc = build()
    window = DatagramService.DEDUP_WINDOW
    for i in range(window + 10):
        svc["s0"].send("s1", i, dedup_key=f"k{i}")
    k.run()
    drain(svc["s1"])
    # The oldest keys were pruned: resending key 0 is accepted again.
    svc["s0"].send("s1", "again", dedup_key="k0")
    k.run()
    assert len(drain(svc["s1"])) == 1


def test_lost_datagram_never_arrives():
    k, lan, svc = build()
    lan.loss_probability = 1.0 - 1e-12  # effectively always
    svc["s0"].send("s1", "m")
    k.run()
    assert drain(svc["s1"]) == []


def test_counters():
    k, lan, svc = build()
    svc["s0"].send("s1", "m")
    k.run()
    drain(svc["s1"])
    assert svc["s0"].sent == 1
    assert svc["s1"].received == 1
