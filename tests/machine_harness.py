"""A hand-cranked host for the sans-IO protocol machines.

Executes effects synchronously into inspectable lists; log forces and
timers complete only when the test says so — which is exactly what makes
adversarial orderings (crash between force and send, duplicated votes,
races between takeovers) easy to script.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.effects import (
    CancelTimer,
    Complete,
    ForceLog,
    Forget,
    LazySendDatagram,
    LocalAbort,
    LocalCommit,
    LocalPrepare,
    MulticastDatagram,
    SendDatagram,
    StartTakeover,
    StartTimer,
    Trace,
    WriteLog,
)


@dataclass
class MachineHost:
    """Collects a machine's effects; completions are explicit calls."""

    machine: Any
    sent: List[Tuple[str, Any]] = field(default_factory=list)
    lazy_sent: List[Tuple[str, Any]] = field(default_factory=list)
    forced: List[Any] = field(default_factory=list)      # records forced
    written: List[Any] = field(default_factory=list)     # lazy records
    pending_forces: List[str] = field(default_factory=list)   # tokens
    pending_durable: List[str] = field(default_factory=list)  # watch tokens
    local_prepares: List[Any] = field(default_factory=list)
    local_commits: List[Any] = field(default_factory=list)
    local_aborts: List[Any] = field(default_factory=list)
    completions: List[Any] = field(default_factory=list)
    forgotten: List[Any] = field(default_factory=list)
    timers: Dict[str, float] = field(default_factory=dict)
    takeover_requests: List[Any] = field(default_factory=list)
    traces: List[Any] = field(default_factory=list)

    def execute(self, effects: List[Any]) -> None:
        for effect in effects:
            if isinstance(effect, SendDatagram):
                self.sent.append((effect.dst, effect.message))
            elif isinstance(effect, MulticastDatagram):
                for dst in effect.dsts:
                    self.sent.append((dst, effect.message))
            elif isinstance(effect, LazySendDatagram):
                self.lazy_sent.append((effect.dst, effect.message))
            elif isinstance(effect, ForceLog):
                self.forced.append(effect.record)
                self.pending_forces.append(effect.token)
            elif isinstance(effect, WriteLog):
                self.written.append(effect.record)
                if effect.token is not None:
                    self.pending_durable.append(effect.token)
            elif isinstance(effect, LocalPrepare):
                self.local_prepares.append(effect)
            elif isinstance(effect, LocalCommit):
                self.local_commits.append(effect.tid)
            elif isinstance(effect, LocalAbort):
                self.local_aborts.append(effect.tid)
            elif isinstance(effect, Complete):
                self.completions.append(effect.outcome)
            elif isinstance(effect, Forget):
                self.forgotten.append(effect.tid)
            elif isinstance(effect, StartTimer):
                self.timers[effect.token] = effect.delay_ms
            elif isinstance(effect, CancelTimer):
                self.timers.pop(effect.token, None)
            elif isinstance(effect, StartTakeover):
                self.takeover_requests.append(effect.tid)
            elif isinstance(effect, Trace):
                self.traces.append(effect)
            else:
                raise AssertionError(f"unexpected effect {effect!r}")

    # ------------------------------------------------------ completions

    def complete_force(self, token: Optional[str] = None) -> None:
        """Acknowledge the oldest pending force (or a named one)."""
        if token is None:
            token = self.pending_forces.pop(0)
        else:
            self.pending_forces.remove(token)
        self.execute(self.machine.on_log_forced(token))

    def complete_durable(self, token: Optional[str] = None) -> None:
        if token is None:
            token = self.pending_durable.pop(0)
        else:
            self.pending_durable.remove(token)
        self.execute(self.machine.on_log_durable(token))

    def local_prepared(self, vote) -> None:
        self.execute(self.machine.on_local_prepared(vote))

    def deliver(self, msg) -> None:
        self.execute(self.machine.on_message(msg))

    def fire_timer(self, token: str) -> None:
        assert token in self.timers, f"timer {token} not armed"
        del self.timers[token]
        self.execute(self.machine.on_timer(token))

    # -------------------------------------------------------- queries

    def sent_kinds(self) -> List[str]:
        return [type(m).__name__ for _, m in self.sent]

    def messages_to(self, dst: str) -> List[Any]:
        return [m for d, m in self.sent if d == dst]

    def forced_kinds(self) -> List[str]:
        return [r.kind.value for r in self.forced]

    def written_kinds(self) -> List[str]:
        return [r.kind.value for r in self.written]

    def start(self) -> "MachineHost":
        self.execute(self.machine.start())
        return self
