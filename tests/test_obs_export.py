"""Chrome trace-event export: structure, scaling, JSON validity."""

import json

from repro.obs.export import to_trace_events, write_trace
from repro.obs.spans import SpanRecorder


def _recorder():
    rec = SpanRecorder()
    rec.add(1.0, 2.5, "log.force", site="a", tid="T1@a", lsn=3)
    rec.add(2.5, 12.5, "net.datagram", site="a", tid="T1@a", dst="b")
    rec.add(13.0, 13.8, "cpu.service", site="b", tid="T1@a",
            component="tranman")
    rec.instant(14.0, "tranman.complete", site="b", tid="T1@a",
                outcome="committed")
    rec.gauge(1.0, "lan.in_flight", 1)
    rec.gauge(12.5, "lan.in_flight", 0)
    return rec


def test_spans_become_complete_events_in_microseconds():
    doc = to_trace_events(_recorder())
    assert doc["displayTimeUnit"] == "ms"
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == 3
    force = next(e for e in xs if e["name"] == "log.force")
    assert force["ts"] == 1_000.0 and force["dur"] == 1_500.0
    assert force["cat"] == "log_force"
    assert force["args"] == {"tid": "T1@a", "lsn": 3}


def test_sites_become_processes_classes_become_threads():
    doc = to_trace_events(_recorder())
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    process_names = {e["args"]["name"] for e in meta
                     if e["name"] == "process_name"}
    assert process_names == {"site a", "site b"}
    thread_names = {e["args"]["name"] for e in meta
                    if e["name"] == "thread_name"}
    assert {"log_force", "datagram", "cpu"} <= thread_names
    # Events on different sites carry different pids.
    xs = {e["name"]: e["pid"] for e in doc["traceEvents"]
          if e["ph"] == "X"}
    assert xs["log.force"] != xs["cpu.service"]


def test_instants_and_counters():
    doc = to_trace_events(_recorder())
    (instant,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert instant["name"] == "tranman.complete"
    assert instant["s"] == "p"
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert [(c["ts"], c["args"]["value"]) for c in counters] == \
        [(1_000.0, 1), (12_500.0, 0)]


def test_non_json_detail_values_stringified():
    class Weird:
        def __str__(self):
            return "weird"

    rec = SpanRecorder()
    rec.add(0.0, 1.0, "lock.get", site="a", obj=Weird())
    doc = to_trace_events(rec)
    (x,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert x["args"]["obj"] == "weird"
    json.dumps(doc)  # must not raise


def test_write_trace_roundtrips(tmp_path):
    path = tmp_path / "trace.json"
    n = write_trace(_recorder(), str(path))
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == n > 0
    for event in doc["traceEvents"]:
        assert {"ph", "pid", "name"} <= set(event)
        if event["ph"] == "X":
            assert event["dur"] >= 0


def test_open_spans_skipped():
    rec = SpanRecorder()
    rec.begin(0.0, "log.force", site="a")
    doc = to_trace_events(rec)
    assert [e for e in doc["traceEvents"] if e["ph"] == "X"] == []
