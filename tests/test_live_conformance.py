"""The capstone: one scripted scenario, two substrates, byte-identical
transcripts for all three protocol families.

``run_conformance`` executes the scenario under the simulated LAN
(deterministic kernel, jitter-free cost model) and under live loopback
TCP (real sockets, real frame codec, real fsync-backed WALs) with the
shared :class:`repro.live.host.SiteHost` interpreting effects on both
sides, then compares the canonicalized per-site-pair transcripts as
bytes.  These tests assert the equality itself plus the properties that
make it meaningful: all three families actually appear on the wire, and
the live run really did go through TCP and on-disk WALs."""

import asyncio
import json

import pytest

from repro.core.outcomes import Vote
from repro.live.conformance import run_conformance, run_live_scenario
from repro.live.scenario import (
    Scenario,
    ScenarioStep,
    conformance_cost,
    conformance_scenario,
)
from repro.live.simhost import run_sim_scenario
from repro.live.walfile import read_records


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    """One full conformance run shared by the assertions below (the live
    half costs a few wall-clock seconds)."""
    run_dir = tmp_path_factory.mktemp("conformance")
    return run_conformance(str(run_dir), fsync=True)


class TestByteIdentical:
    def test_transcripts_match(self, report):
        assert report.match, report.summary()
        assert report.sim_bytes == report.live_bytes
        assert len(report.sim_bytes) > 1000  # a real transcript, not []

    def test_all_three_families_on_the_wire(self, report):
        kinds = {m["type"] for msgs in report.sim_pairs.values()
                 for m in msgs}
        assert "PrepareRequest" in kinds        # 2PC
        assert "NbPrepare" in kinds             # non-blocking quorum
        assert "PcPrepare" in kinds and "PcPhase2b" in kinds  # Paxos
        # And the live wire carried the same vocabulary, by equality.
        assert report.sim_pairs == report.live_pairs

    def test_canonical_form_is_per_pair_fifo(self, report):
        decoded = json.loads(report.sim_bytes)
        assert set(decoded) == set(report.sim_pairs)
        for pair, msgs in decoded.items():
            src, dst = pair.split("->")
            assert src != dst  # self-delivery never crosses the wire
            assert all(m["type"] for m in msgs)

    def test_every_transaction_committed_live(self, report):
        for site, completions in report.live_completions.items():
            for tid, outcome in completions.items():
                assert outcome == "committed", (site, tid, outcome)


class TestSimDeterminism:
    def test_sim_half_is_bit_stable(self):
        s = conformance_scenario()
        assert run_sim_scenario(s).canonical_bytes() == \
            run_sim_scenario(s).canonical_bytes()


class TestLiveSubstrateWasReal:
    def test_live_wals_hit_disk(self, report, tmp_path_factory):
        """Not a mock: each live site left a readable WAL with the
        protocol's records in it."""
        # The module fixture used its own dir; run a tiny live-only
        # scenario here so we can inspect the files it leaves.
        run_dir = tmp_path_factory.mktemp("wals")
        scenario = Scenario(
            sites=("alpha", "beta"),
            steps=(ScenarioStep(0.0, "alpha", "2pc", ("beta",)),),
            cost=conformance_cost(), horizon_ms=1500.0)
        asyncio.run(run_live_scenario(scenario, str(run_dir)))
        alpha = read_records(str(run_dir / "alpha.wal"))
        beta = read_records(str(run_dir / "beta.wal"))
        assert any(r.kind.name == "COORD_COMMIT" for r in alpha)
        assert any(r.kind.name == "PREPARE" for r in beta)


class TestDivergenceIsDetected:
    def test_vote_change_breaks_equality(self, tmp_path):
        """Sanity check on the oracle itself: a scenario whose live half
        votes differently than the sim half must NOT conform — byte
        equality is falsifiable, not vacuous."""
        scenario = Scenario(
            sites=("alpha", "beta"),
            steps=(ScenarioStep(0.0, "alpha", "2pc", ("beta",)),),
            cost=conformance_cost(), horizon_ms=1500.0)
        sim_bytes = run_sim_scenario(scenario).canonical_bytes()
        scenario_no = Scenario(
            sites=scenario.sites, steps=scenario.steps,
            cost=scenario.cost, horizon_ms=scenario.horizon_ms,
            votes={"beta": Vote.NO})
        live = asyncio.run(run_live_scenario(scenario_no, str(tmp_path)))
        assert live.live_bytes != sim_bytes
