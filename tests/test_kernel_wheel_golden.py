"""Golden-transcript equivalence: timer wheel vs a reference heap.

The kernel routes timeout-class timers (``delay >= 64 ms``) through an
array-backed bucket wheel instead of the near heap (see
``sim/kernel.py``).  The wheel must be *observationally invisible*: the
fired-event transcript — every ``(time, seq)`` in order — has to be
byte-identical to what a single global ``(time, seq)`` heap produces,
no matter how schedule/cancel/post calls interleave across tiers.

``ReferenceKernel`` below is the old design kept on purpose: one heap,
lazy cancellation.  It is deliberately naive (no wheel, no compaction
pressure games) so the comparison pins semantics, not implementation.

The headline test is the cancel-heavy regression from the issue: 100k
short-horizon schedule/cancel timers (the datagram-retry pattern) with
live traffic interleaved, asserted transcript-identical.
"""

from heapq import heappop, heappush

import pytest

from repro.sim.kernel import Kernel
from repro.sim.rng import RngStreams


class _RefTimer(list):
    __slots__ = ()

    def cancel(self):
        if self[4] or self[2] is None:
            return
        self[4] = True


class ReferenceKernel:
    """Single-heap kernel: the semantic baseline for event ordering."""

    def __init__(self):
        self.now = 0.0
        self._seq = 0
        self._heap = []

    def schedule(self, delay, fn, *args):
        assert delay >= 0
        seq = self._seq
        self._seq = seq + 1
        timer = _RefTimer((self.now + delay, seq, fn, args, False))
        heappush(self._heap, timer)
        return timer

    def post(self, delay, fn, *args):
        self.schedule(delay, fn, *args)

    def run(self, until=None):
        while self._heap:
            timer = self._heap[0]
            if timer[4]:
                heappop(self._heap)
                continue
            if until is not None and timer[0] > until:
                break
            heappop(self._heap)
            self.now = timer[0]
            fn, args = timer[2], timer[3]
            timer[2] = None
            fn(*args)
        if until is not None and self.now < until:
            self.now = until


def _transcript(kernel_cls, workload, **run_kw):
    """Run ``workload`` on a fresh kernel; return the fired transcript.

    The transcript records ``(time, tag)`` per fired event.  Sequence
    numbers are allocated identically by both kernels (one per
    schedule/post call, in call order), so tag identity plus firing
    order pins the full ``(time, seq)`` total order.
    """
    k = kernel_cls()
    fired = []
    workload(k, fired)
    k.run(**run_kw)
    return [(round(t, 9), tag) for t, tag in fired]


def _assert_identical(workload, **run_kw):
    golden = _transcript(ReferenceKernel, workload, **run_kw)
    actual = _transcript(Kernel, workload, **run_kw)
    assert actual == golden
    return golden


# ------------------------------------------------------------ workloads


def test_cancel_heavy_100k_transcript_identical():
    """The issue's regression gate: 100k schedule/cancel short-horizon
    timers produce the identical fired transcript on wheel and heap."""

    def workload(k, fired):
        rng = RngStreams(1234).stream("golden")
        count = [0]
        retries = []

        def deliver(i):
            fired.append((k.now, ("deliver", i)))
            count[0] += 1
            # Datagram pattern: every delivery arms a retry timeout in
            # the wheel tier, then cancels it (ack arrived) — except a
            # 1-in-64 straggler whose timeout is allowed to fire.
            t = k.schedule(64.0 + rng.random() * 400.0, miss, i)
            if rng.random() < 1.0 / 64.0:
                retries.append(t)
            else:
                t.cancel()
            if count[0] < 100_000:
                k.post(rng.random() * 2.0, deliver, count[0])

        def miss(i):
            fired.append((k.now, ("miss", i)))

        k.schedule(0.0, deliver, 0)

    golden = _assert_identical(workload)
    kinds = {tag[0] for _, tag in golden}
    assert kinds == {"deliver", "miss"}  # stragglers really fired
    assert len(golden) > 100_000


def test_mixed_tier_fuzz_transcript_identical():
    """Randomized schedule/cancel/post across all three tiers (near,
    wheel, overflow) with re-entrant scheduling from callbacks."""

    def workload(k, fired):
        rng = RngStreams(99).stream("fuzz")
        handles = []

        def fire(i):
            fired.append((k.now, i))
            r = rng.random()
            if r < 0.55:
                # Delays straddle the tier boundaries: sub-slot, wheel
                # range, and past the 32.768 s horizon.
                delay = rng.choice(
                    [0.0, 1.5, 63.9, 64.0, 65.0, 640.0, 4_000.0,
                     32_768.0, 40_000.0, 100_000.0])
                handles.append(k.schedule(delay, fire, i + 1))
            elif r < 0.75:
                k.post(rng.random() * 300.0, fire, -i)
            if handles and r > 0.9:
                handles.pop(int(r * 1000) % len(handles)).cancel()

        for i in range(200):
            k.schedule(rng.random() * 70_000.0, fire, 1000 + i)

        def storm():
            doomed = [k.schedule(200.0 + (i % 37), fire, 10_000 + i)
                      for i in range(500)]
            for t in doomed[::2]:
                t.cancel()

        k.schedule(5.0, storm)

    _assert_identical(workload, until=500_000.0)


def test_same_instant_cross_tier_ties_fire_in_schedule_order():
    """Events landing at one instant from different tiers (wheel drain
    vs near heap) still fire in scheduling order."""

    def workload(k, fired):
        def tag(x):
            fired.append((k.now, x))

        k.schedule(128.0, tag, "wheel-first")   # wheel tier
        k.post(128.0, tag, "near-post")         # near tier, same time
        k.schedule(128.0, tag, "wheel-second")  # wheel tier again
        k.schedule(1.0, tag, "early")
        # A timer scheduled *from a callback* for the same instant.
        k.schedule(64.0, lambda: k.schedule(64.0, tag, "nested"))

    golden = _assert_identical(workload)
    assert [tag for _, tag in golden] == [
        "early", "wheel-first", "near-post", "wheel-second", "nested"]


def test_run_until_boundary_inside_wheel_slot():
    """Stopping mid-slot must not lose or reorder bucketed timers."""

    def workload(k, fired):
        for i in range(10):
            k.schedule(100.0 + i, fired.append, (100.0 + i, i))

    golden = _transcript(ReferenceKernel, workload, until=104.5)
    actual = _transcript(Kernel, workload, until=104.5)
    assert actual == golden
    assert len(actual) == 5

    # And the remainder fires on the next run.
    k = Kernel()
    fired = []
    workload(k, fired)
    k.run(until=104.5)
    assert k.now == 104.5
    k.run()
    assert fired == [(100.0 + i, i) for i in range(10)]


@pytest.mark.parametrize("delay", [64.0, 100.0, 5_000.0, 40_000.0])
def test_wheel_tier_timers_cancel_without_heap_traffic(delay):
    """Cancelled timeout-class timers are dropped at drain time; the
    near heap never sees them (the whole point of the wheel tier)."""
    k = Kernel()
    fired = []
    for i in range(1_000):
        k.schedule(delay, fired.append, i).cancel()
    assert k.pending == 0
    survivor = k.schedule(delay, fired.append, "live")
    k.run()
    assert fired == ["live"]
    assert not survivor.active
