"""Unit tests for the C-Threads-style pool, rw-lock, lock hierarchy."""

import pytest

from repro.mach.message import Message
from repro.mach.ports import Port
from repro.mach.threads import CThreadsPool, LockHierarchy, RwLock
from repro.sim.kernel import Kernel
from repro.sim.process import Process, Sleep
from repro.sim.resources import SimLock


# ---------------------------------------------------------------- pool


def _pool(kernel, port, handler, size):
    return CThreadsPool(kernel, port, handler, size=size, name="pool")


def test_pool_drains_port():
    k = Kernel()
    port = Port(k, "a")
    handled = []

    def handler(msg):
        handled.append(msg.kind)
        yield Sleep(1.0)

    _pool(k, port, handler, size=2)
    for i in range(4):
        port.enqueue(Message(kind=f"m{i}"))
    k.run()
    assert sorted(handled) == ["m0", "m1", "m2", "m3"]


def test_single_thread_serializes():
    k = Kernel()
    port = Port(k, "a")
    spans = []

    def handler(msg):
        start = k.now
        yield Sleep(10.0)
        spans.append((start, k.now))

    _pool(k, port, handler, size=1)
    port.enqueue(Message(kind="a"))
    port.enqueue(Message(kind="b"))
    k.run()
    assert spans == [(0.0, 10.0), (10.0, 20.0)]


def test_many_threads_run_in_parallel():
    k = Kernel()
    port = Port(k, "a")
    done_at = []

    def handler(msg):
        yield Sleep(10.0)
        done_at.append(k.now)

    _pool(k, port, handler, size=4)
    for _ in range(4):
        port.enqueue(Message(kind="x"))
    k.run()
    assert done_at == [10.0] * 4


def test_pool_grow_never_shrinks():
    k = Kernel()
    port = Port(k, "a")

    def handler(msg):
        yield Sleep(1.0)

    pool = _pool(k, port, handler, size=1)
    pool.grow()
    assert pool.size == 2


def test_pool_requires_at_least_one_thread():
    k = Kernel()
    with pytest.raises(ValueError):
        _pool(k, Port(k, "a"), lambda m: iter(()), size=0)


def test_pool_busy_and_handled_counters():
    k = Kernel()
    port = Port(k, "a")

    def handler(msg):
        yield Sleep(5.0)

    pool = _pool(k, port, handler, size=2)
    port.enqueue(Message(kind="x"))
    k.run()
    assert pool.handled == 1
    assert pool.busy == 0


# -------------------------------------------------------------- RwLock


def test_rwlock_readers_share():
    k = Kernel()
    rw = RwLock(k)
    entered = []

    def reader(name):
        yield from rw.acquire_read()
        entered.append((name, k.now))
        yield Sleep(10.0)
        yield from rw.release_read()

    Process(k, reader("r1"))
    Process(k, reader("r2"))
    k.run()
    assert [t for _, t in entered] == [0.0, 0.0]


def test_rwlock_writer_excludes_readers():
    k = Kernel()
    rw = RwLock(k)
    timeline = []

    def writer():
        yield from rw.acquire_write()
        timeline.append(("w", k.now))
        yield Sleep(10.0)
        yield from rw.release_write()

    def reader():
        yield Sleep(1.0)
        yield from rw.acquire_read()
        timeline.append(("r", k.now))
        yield from rw.release_read()

    Process(k, writer())
    Process(k, reader())
    k.run()
    assert timeline == [("w", 0.0), ("r", 10.0)]


def test_rwlock_writer_priority_blocks_new_readers():
    k = Kernel()
    rw = RwLock(k)
    timeline = []

    def long_reader():
        yield from rw.acquire_read()
        yield Sleep(10.0)
        yield from rw.release_read()

    def writer():
        yield Sleep(1.0)
        yield from rw.acquire_write()
        timeline.append(("w", k.now))
        yield Sleep(5.0)
        yield from rw.release_write()

    def late_reader():
        yield Sleep(2.0)
        yield from rw.acquire_read()
        timeline.append(("r", k.now))
        yield from rw.release_read()

    Process(k, long_reader())
    Process(k, writer())
    Process(k, late_reader())
    k.run()
    # The late reader must wait behind the queued writer.
    assert timeline == [("w", 10.0), ("r", 15.0)]


def test_rwlock_misuse_raises():
    k = Kernel()
    rw = RwLock(k)

    def body():
        yield from rw.release_read()

    Process(k, body())
    with pytest.raises(RuntimeError, match="release_read"):
        k.run()


# ------------------------------------------------------ LockHierarchy


def test_hierarchy_enforces_ascending_order():
    k = Kernel()
    hierarchy = LockHierarchy()
    low = hierarchy.register(SimLock(k, name="low"), 1)
    high = hierarchy.register(SimLock(k, name="high"), 2)

    def good():
        guard = hierarchy.guard()
        yield from guard.acquire(low)
        yield from guard.acquire(high)
        guard.release_all()
        return "ok"

    proc = Process(k, good())
    k.run()
    assert proc.done.value == "ok"


def test_hierarchy_violation_raises():
    k = Kernel()
    hierarchy = LockHierarchy()
    low = hierarchy.register(SimLock(k, name="low"), 1)
    high = hierarchy.register(SimLock(k, name="high"), 2)

    def bad():
        guard = hierarchy.guard()
        yield from guard.acquire(high)
        yield from guard.acquire(low)

    Process(k, bad())
    with pytest.raises(RuntimeError, match="lock-order violation"):
        k.run()


def test_unregistered_lock_rejected():
    hierarchy = LockHierarchy()
    with pytest.raises(RuntimeError, match="not in hierarchy"):
        hierarchy.level_of(SimLock(Kernel(), name="stray"))
