"""Unit tests for the per-site CPU scheduler."""

import pytest

from repro.mach.scheduler import CpuScheduler
from repro.sim.kernel import Kernel
from repro.sim.process import Process


def test_zero_cost_is_free():
    k = Kernel()
    cpu = CpuScheduler(k, num_cpus=1, context_switch_ms=1.0)

    def body():
        yield from cpu.run(0.0)
        return k.now

    proc = Process(k, body())
    k.run()
    assert proc.done.value == 0.0
    assert cpu.dispatches == 0


def test_burst_includes_context_switch():
    k = Kernel()
    cpu = CpuScheduler(k, num_cpus=1, context_switch_ms=0.5)

    def body():
        yield from cpu.run(10.0)
        return k.now

    proc = Process(k, body())
    k.run()
    assert proc.done.value == 10.5


def test_queueing_when_all_cpus_busy():
    k = Kernel()
    cpu = CpuScheduler(k, num_cpus=2, context_switch_ms=0.0)
    finished = []

    def body(name):
        yield from cpu.run(10.0)
        finished.append((name, k.now))

    for name in ("a", "b", "c"):
        Process(k, body(name))
    k.run()
    times = dict(finished)
    assert times["a"] == 10.0 and times["b"] == 10.0
    assert times["c"] == 20.0


def test_utilization():
    k = Kernel()
    cpu = CpuScheduler(k, num_cpus=2, context_switch_ms=0.0)

    def body():
        yield from cpu.run(10.0)

    Process(k, body())
    k.run()
    assert cpu.utilization(10.0) == pytest.approx(0.5)


def test_reset_stats():
    k = Kernel()
    cpu = CpuScheduler(k, num_cpus=1)

    def body():
        yield from cpu.run(1.0)

    Process(k, body())
    k.run()
    cpu.reset_stats()
    assert cpu.busy_ms == 0.0 and cpu.dispatches == 0


def test_requires_a_cpu():
    with pytest.raises(ValueError):
        CpuScheduler(Kernel(), num_cpus=0)
