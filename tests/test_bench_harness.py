"""Unit tests for the benchmark harness itself (experiment runners,
workloads, figure helpers)."""

import pytest

from repro.bench.experiment import (
    _operation_cost,
    measure_latency,
    measure_throughput,
)
from repro.bench.figures import FigureSeries
from repro.config import rt_pc_profile
from repro import CamelotSystem, SystemConfig
from repro.bench.workloads import closed_loop, serial_minimal_txns, transfer


def test_operation_cost_matches_paper_arithmetic():
    cost = rt_pc_profile()
    # 3.5 ms local + 29 ms per remote operation.
    assert _operation_cost(cost, 0) == pytest.approx(3.5)
    assert _operation_cost(cost, 2) == pytest.approx(3.5 + 2 * 29.0)


def test_measure_latency_reports_all_fields():
    result = measure_latency(1, trials=5, warmup=1)
    assert result.summary.n == 5
    assert result.tm_summary.mean < result.summary.mean
    assert result.commit_summary.mean < result.summary.mean
    assert result.forces_per_txn == 2.0
    assert result.datagrams_per_txn == 3.0
    assert result.n_subs == 1 and result.op == "write"


def test_measure_latency_deterministic_per_seed():
    a = measure_latency(1, trials=5, seed=3)
    b = measure_latency(1, trials=5, seed=3)
    assert a.summary.mean == b.summary.mean
    c = measure_latency(1, trials=5, seed=4)
    assert c.summary.mean != a.summary.mean


def test_measure_throughput_counts_only_window_commits():
    result = measure_throughput(1, 5, False, duration_ms=3_000.0,
                                warmup_ms=500.0)
    assert result.committed > 0
    assert result.tps == pytest.approx(result.committed / 3.0)
    assert result.pairs == 1 and result.threads == 5


def test_figure_series_helpers():
    r = measure_latency(0, trials=3, warmup=0)
    fs = FigureSeries(label="x", points=[(0, r)])
    assert fs.means() == [r.summary.mean]
    assert fs.stdevs() == [r.summary.stdev]


# ----------------------------------------------------------- workloads


def test_serial_minimal_txns_counts_commits():
    system = CamelotSystem(SystemConfig(sites={"a": 1}))
    app = system.application("a")
    committed = system.run_process(
        serial_minimal_txns(app, ["server0@a"], 4))
    assert committed == 4
    assert len(app.history) == 4


def test_closed_loop_stops_at_deadline():
    system = CamelotSystem(SystemConfig(sites={"a": 1}))
    app = system.application("a")
    committed = system.run_process(
        closed_loop(app, ["server0@a"], until_ms=500.0))
    assert committed >= 1
    assert system.kernel.now >= 500.0
    # Every recorded commit began before the deadline.
    assert all(r.began_at < 500.0 for r in app.history)


def test_transfer_insufficient_funds_is_clean():
    system = CamelotSystem(SystemConfig(sites={"a": 1}),
                           initial_objects={"server0@a": {"rich": 5,
                                                          "poor": 0}})
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        ok = yield from transfer(app, tid, "server0@a", "rich",
                                 "server0@a", "poor", 100)
        yield from app.abort(tid)
        return ok

    assert system.run_process(workload()) is False
    system.run_for(500.0)
    assert system.server("server0@a").peek("rich") == 5
    assert system.server("server0@a").peek("poor") == 0
