"""repro.live.codec: every protocol message survives the wire, and no
wire garbage survives the decoder.

The round-trip half is property-based over the real message registry —
each of the ~28 :mod:`repro.core.messages` dataclasses is generated
with hypothesis-built field values, framed, chunked arbitrarily, and
must decode equal (and re-encode byte-identically, the property the
conformance harness leans on).  The fuzz half feeds malformed,
truncated, bit-flipped, and oversized bytes and requires a
:class:`FrameError` with an accurate cause tag — never a crash, never a
silently wrong message."""

import dataclasses
import json
import struct
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.messages import (
    ANY_MESSAGE,
    CommitAck,
    NbPrepare,
    PcPhase2b,
    PrepareRequest,
    VoteResponse,
)
from repro.core.outcomes import Outcome, TwoPhaseVariant, Vote
from repro.core.quorum import QuorumSpec
from repro.core.tid import TID
from repro.live.codec import (
    HEADER_SIZE,
    KIND_CONTROL,
    KIND_MESSAGE,
    MAGIC,
    MAX_PAYLOAD,
    VERSION,
    FrameDecoder,
    FrameError,
    decode_message_payload,
    encode_control_frame,
    encode_frame,
    encode_message_frame,
    message_from_dict,
    message_to_dict,
)

# --------------------------------------------------- message strategies

_sites = st.sampled_from(["alpha", "beta", "gamma", "delta"])
_tids = st.builds(lambda s, n: TID.parse(f"T{n}@{s}"),
                  _sites, st.integers(min_value=1, max_value=99))


def _value_for(field: dataclasses.Field) -> st.SearchStrategy:
    """A strategy for one message field, chosen by name/type like the
    codec's own per-field decoder table."""
    name = field.name
    if name == "tid":
        return _tids
    if name in ("sender", "leader", "coordinator"):
        return _sites
    if name == "variant":
        return st.sampled_from(list(TwoPhaseVariant))
    if name == "vote":
        return st.sampled_from(list(Vote))
    if name == "outcome":
        return st.sampled_from(list(Outcome))
    if name == "quorum":
        return st.builds(QuorumSpec.majority,
                         st.integers(min_value=1, max_value=7))
    if name in ("sites", "acceptors", "known_sites"):
        return st.lists(_sites, min_size=1, max_size=4).map(tuple)
    if name in ("votes", "values"):
        return st.lists(
            st.tuples(_sites, st.sampled_from(["yes", "no", "read_only"])),
            max_size=4).map(tuple)
    if name == "accepted":
        return st.lists(
            st.tuples(_sites, st.integers(min_value=0, max_value=9),
                      st.sampled_from(["yes", "no"])),
            max_size=4).map(tuple)
    if name in ("round", "ballot", "promised"):
        return st.integers(min_value=0, max_value=1000)
    if name == "ok":
        return st.booleans()
    if name == "status":
        return st.sampled_from(["no_state", "prepared", "replicated",
                                "abort_pledged", "committed", "aborted"])
    if name == "decision_data":
        return st.one_of(st.none(),
                         st.dictionaries(st.sampled_from(["k1", "k2"]),
                                         st.integers(), max_size=2))
    if field.type in ("bool", bool):
        return st.booleans()
    if field.type in ("int", int):
        return st.integers(min_value=0, max_value=1000)
    return st.none()


def _message_strategy() -> st.SearchStrategy:
    builders = []
    for cls in ANY_MESSAGE:
        kwargs = {f.name: _value_for(f) for f in dataclasses.fields(cls)}
        builders.append(st.builds(cls, **kwargs))
    return st.one_of(builders)


class TestRoundTrip:
    @settings(max_examples=300, deadline=None)
    @given(msg=_message_strategy(), src=_sites,
           chunk=st.integers(min_value=1, max_value=13))
    def test_any_message_survives_frame_and_chunked_decode(
            self, msg, src, chunk):
        frame = encode_message_frame(src, msg)
        decoder = FrameDecoder()
        frames = []
        for i in range(0, len(frame), chunk):
            frames.extend(decoder.feed(frame[i:i + chunk]))
        assert len(frames) == 1
        kind, payload = frames[0]
        assert kind == KIND_MESSAGE
        got_src, got = decode_message_payload(payload)
        assert got_src == src
        assert got == msg
        # Re-encoding is byte-stable: the conformance harness depends on
        # serialisation being canonical, not merely invertible.
        assert encode_message_frame(got_src, got) == frame

    @settings(max_examples=100, deadline=None)
    @given(msg=_message_strategy())
    def test_dict_form_is_json_safe_and_typed(self, msg):
        data = message_to_dict(msg)
        json.dumps(data)  # must not raise
        assert data["type"] == type(msg).__name__
        assert message_from_dict(json.loads(json.dumps(data))) == msg

    def test_two_frames_in_one_feed(self):
        a = encode_message_frame("alpha", CommitAck(
            tid=TID.parse("T1@alpha"), sender="alpha"))
        b = encode_control_frame({"cmd": "ping"})
        frames = FrameDecoder().feed(a + b)
        assert [k for k, _ in frames] == [KIND_MESSAGE, KIND_CONTROL]


class TestFuzzRejection:
    """Garbage in -> FrameError with the right cause, never a crash."""

    def _ok_frame(self) -> bytes:
        return encode_message_frame("beta", VoteResponse(
            tid=TID.parse("T7@alpha"), sender="beta", vote=Vote.YES))

    def test_bad_magic(self):
        frame = bytearray(self._ok_frame())
        frame[:4] = b"XXXX"
        with pytest.raises(FrameError) as err:
            FrameDecoder().feed(bytes(frame))
        assert err.value.cause == "magic"

    def test_bad_version(self):
        frame = bytearray(self._ok_frame())
        frame[4] = VERSION + 1
        with pytest.raises(FrameError) as err:
            FrameDecoder().feed(bytes(frame))
        assert err.value.cause == "version"

    def test_bad_kind(self):
        frame = bytearray(self._ok_frame())
        frame[5] = 99
        with pytest.raises(FrameError) as err:
            FrameDecoder().feed(bytes(frame))
        assert err.value.cause == "kind"

    def test_oversized_length_rejected_before_buffering(self):
        header = struct.Struct(">4sBBII").pack(
            MAGIC, VERSION, KIND_MESSAGE, MAX_PAYLOAD + 1, 0)
        with pytest.raises(FrameError) as err:
            FrameDecoder().feed(header)
        assert err.value.cause == "oversize"

    def test_oversize_refused_at_encode_too(self):
        with pytest.raises(FrameError) as err:
            encode_frame(KIND_CONTROL, {"blob": "x" * (MAX_PAYLOAD + 1)})
        assert err.value.cause == "oversize"

    def test_payload_bit_flip_fails_crc(self):
        frame = bytearray(self._ok_frame())
        frame[-1] ^= 0x40
        with pytest.raises(FrameError) as err:
            FrameDecoder().feed(bytes(frame))
        assert err.value.cause == "crc"

    def test_non_json_payload(self):
        body = b"\xff\xfe not json"
        frame = struct.Struct(">4sBBII").pack(
            MAGIC, VERSION, KIND_CONTROL, len(body), zlib.crc32(body)) + body
        with pytest.raises(FrameError) as err:
            FrameDecoder().feed(frame)
        assert err.value.cause == "json"

    def test_non_object_payload(self):
        body = b"[1,2,3]"
        frame = struct.Struct(">4sBBII").pack(
            MAGIC, VERSION, KIND_CONTROL, len(body), zlib.crc32(body)) + body
        with pytest.raises(FrameError) as err:
            FrameDecoder().feed(frame)
        assert err.value.cause == "json"

    def test_unknown_message_type(self):
        with pytest.raises(FrameError) as err:
            decode_message_payload(
                {"src": "alpha", "msg": {"type": "NoSuchMessage"}})
        assert err.value.cause == "type"

    def test_bad_field_value(self):
        with pytest.raises(FrameError) as err:
            decode_message_payload(
                {"src": "alpha",
                 "msg": {"type": "VoteResponse", "tid": "T1@alpha",
                         "sender": "beta", "vote": "maybe"}})
        assert err.value.cause == "fields"

    def test_missing_envelope(self):
        with pytest.raises(FrameError) as err:
            decode_message_payload({"msg": {"type": "CommitAck"}})
        assert err.value.cause == "envelope"

    def test_truncated_frame_just_waits(self):
        frame = self._ok_frame()
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-3]) == []
        assert decoder.buffered == len(frame) - 3
        frames = decoder.feed(frame[-3:])
        assert len(frames) == 1

    @settings(max_examples=200, deadline=None)
    @given(junk=st.binary(min_size=0, max_size=64))
    def test_arbitrary_bytes_never_crash_decoder(self, junk):
        decoder = FrameDecoder()
        try:
            decoder.feed(junk)
        except FrameError:
            pass  # the contract: typed rejection, nothing else

    @settings(max_examples=100, deadline=None)
    @given(junk=st.binary(min_size=1, max_size=32), cut=st.data())
    def test_corrupted_valid_frame_never_decodes_wrong(self, junk, cut):
        """Splice junk into a valid frame: either it still decodes to the
        original message or it raises; a third outcome is a codec bug."""
        frame = self._ok_frame()
        pos = cut.draw(st.integers(min_value=0, max_value=len(frame)))
        mutated = frame[:pos] + junk + frame[pos:]
        decoder = FrameDecoder()
        try:
            frames = decoder.feed(mutated)
        except FrameError:
            return
        for kind, payload in frames:
            if kind == KIND_MESSAGE:
                try:
                    src, msg = decode_message_payload(payload)
                except FrameError:
                    continue
                assert (src, msg) == ("beta", VoteResponse(
                    tid=TID.parse("T7@alpha"), sender="beta", vote=Vote.YES))


class TestLiveSiteDropsGarbage:
    """The end-to-end robustness contract: a LiveSite fed wire garbage
    drops the connection, counts the drop per cause, and keeps serving
    (mirror of ``Lan.drop_counts``)."""

    def test_garbage_then_valid_control(self, tmp_path):
        import asyncio
        from repro.live.cluster import control
        from repro.live.site import LiveSite

        async def scenario():
            site = LiveSite("alpha", str(tmp_path))
            await site.start()
            loop = asyncio.get_running_loop()

            async def blast(data: bytes) -> None:
                _, writer = await asyncio.open_connection(
                    "127.0.0.1", site.port)
                writer.write(data)
                await writer.drain()
                writer.close()

            await blast(b"GET / HTTP/1.1\r\n\r\n")             # magic
            bad_ver = bytearray(encode_control_frame({"cmd": "ping"}))
            bad_ver[4] = VERSION + 1
            await blast(bytes(bad_ver))                          # version
            flipped = bytearray(encode_control_frame({"cmd": "ping"}))
            flipped[-1] ^= 0x01
            await blast(bytes(flipped))                          # crc
            await blast(struct.Struct(">4sBBII").pack(
                MAGIC, VERSION, KIND_CONTROL, MAX_PAYLOAD + 9, 0))  # oversize
            await asyncio.sleep(0.2)
            # Still alive and serving after four hostile connections.
            status = await loop.run_in_executor(
                None, lambda: control(str(tmp_path), "alpha",
                                      {"cmd": "status"}))
            await site.stop()
            return status

        status = asyncio.run(scenario())
        assert status["ok"]
        drops = status["drops"]
        assert drops["magic"] == 1
        assert drops["version"] == 1
        assert drops["crc"] == 1
        assert drops["oversize"] == 1
        assert drops["total"] == 4
