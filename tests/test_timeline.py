"""Unit tests for the trace timeline renderer."""

from repro import CamelotSystem, SystemConfig
from repro.bench.timeline import extract_rows, render_timeline
from repro.sim.tracing import Tracer


def run_commit(system):
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "x", 1)
        yield from app.write(tid, "server0@b", "x", 2)
        yield from app.commit(tid)
        return tid

    return system.run_process(workload())


def test_rows_extracted_in_time_order():
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))
    run_commit(system)
    rows = extract_rows(system.tracer)
    times = [r.time for r in rows]
    assert times == sorted(times)
    texts = [r.text for r in rows]
    assert any("begin" in t for t in texts)
    assert any("COMPLETE: committed" in t for t in texts)


def test_datagrams_become_arrows():
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))
    run_commit(system)
    rows = extract_rows(system.tracer)
    arrows = [r for r in rows if r.arrow_to is not None]
    assert {r.arrow_to for r in arrows} >= {"a", "b"}
    assert any("PrepareRequest" in r.text for r in arrows)


def test_render_places_events_in_site_columns():
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))
    run_commit(system)
    text = render_timeline(system.tracer, ["a", "b"])
    lines = text.splitlines()
    header = lines[0]
    col_b = header.index("b")
    # Site-b events start at site b's column.
    b_lines = [l for l in lines if "join server0@b" in l]
    assert b_lines and b_lines[0].index("join server0@b") == col_b


def test_time_window_filters():
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))
    run_commit(system)
    early = extract_rows(system.tracer, t1=10.0)
    assert all(r.time <= 10.0 for r in early)
    late = extract_rows(system.tracer, t0=50.0)
    assert all(r.time >= 50.0 for r in late)


def test_tid_filter_keeps_untagged_events():
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))
    tid = run_commit(system)
    rows = extract_rows(system.tracer, tid=str(tid))
    assert any("begin" in r.text for r in rows)
    # A different tid filter drops the begin row.
    rows_other = extract_rows(system.tracer, tid="T99@z")
    assert not any("begin" in r.text for r in rows_other)


def test_empty_tracer_renders_header_only():
    text = render_timeline(Tracer(), ["a"])
    assert len(text.splitlines()) == 2
