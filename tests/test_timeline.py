"""Unit tests for the trace timeline renderer."""

from repro import CamelotSystem, SystemConfig
from repro.bench.timeline import extract_rows, render_timeline
from repro.obs.spans import SpanRecorder
from repro.sim.tracing import Tracer


def run_commit(system):
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "x", 1)
        yield from app.write(tid, "server0@b", "x", 2)
        yield from app.commit(tid)
        return tid

    return system.run_process(workload())


def test_rows_extracted_in_time_order():
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))
    run_commit(system)
    rows = extract_rows(system.tracer)
    times = [r.time for r in rows]
    assert times == sorted(times)
    texts = [r.text for r in rows]
    assert any("begin" in t for t in texts)
    assert any("COMPLETE: committed" in t for t in texts)


def test_datagrams_become_arrows():
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))
    run_commit(system)
    rows = extract_rows(system.tracer)
    arrows = [r for r in rows if r.arrow_to is not None]
    assert {r.arrow_to for r in arrows} >= {"a", "b"}
    assert any("PrepareRequest" in r.text for r in arrows)


def test_render_places_events_in_site_columns():
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))
    run_commit(system)
    text = render_timeline(system.tracer, ["a", "b"])
    lines = text.splitlines()
    header = lines[0]
    col_b = header.index("b")
    # Site-b events start at site b's column.
    b_lines = [l for l in lines if "join server0@b" in l]
    assert b_lines and b_lines[0].index("join server0@b") == col_b


def test_time_window_filters():
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))
    run_commit(system)
    early = extract_rows(system.tracer, t1=10.0)
    assert all(r.time <= 10.0 for r in early)
    late = extract_rows(system.tracer, t0=50.0)
    assert all(r.time >= 50.0 for r in late)


def test_tid_filter_keeps_untagged_events():
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))
    tid = run_commit(system)
    rows = extract_rows(system.tracer, tid=str(tid))
    assert any("begin" in r.text for r in rows)
    # A different tid filter drops the begin row.
    rows_other = extract_rows(system.tracer, tid="T99@z")
    assert not any("begin" in r.text for r in rows_other)


def test_empty_tracer_renders_header_only():
    text = render_timeline(Tracer(), ["a"])
    assert len(text.splitlines()) == 2


# --------------------------------------------------- span-store input


def test_rows_from_span_recorder():
    rec = SpanRecorder()
    rec.add(1.0, 16.0, "log.force", site="a", tid="T1@a")
    rec.add(16.0, 26.0, "net.datagram", site="a", tid="T1@a", dst="b",
            msg_kind="PrepareRequest")
    rec.add(27.0, 27.8, "cpu.service", site="b", tid="T1@a",
            component="tranman")
    rows = extract_rows(rec)
    assert [r.time for r in rows] == sorted(r.time for r in rows)
    assert any("log force" in r.text for r in rows)
    arrows = [r for r in rows if r.arrow_to is not None]
    assert len(arrows) == 1
    assert arrows[0].arrow_to == "b"
    assert "PrepareRequest" in arrows[0].text


def test_span_recorder_rows_render_in_columns():
    rec = SpanRecorder()
    rec.add(1.0, 16.0, "log.force", site="a", tid="T1@a")
    rec.add(27.0, 27.8, "cpu.service", site="b", tid="T1@a",
            component="server")
    text = render_timeline(rec, ["a", "b"])
    lines = text.splitlines()
    col_b = lines[0].index("b")
    b_lines = [l for l in lines if "cpu (server)" in l]
    assert b_lines and b_lines[0].index("cpu (server)") == col_b


def test_span_recorder_tid_filter():
    rec = SpanRecorder()
    rec.add(1.0, 2.0, "log.force", site="a", tid="T1@a")
    rec.add(3.0, 4.0, "log.force", site="a", tid="T2@a")
    rows = extract_rows(rec, tid="T1@a")
    assert len(rows) == 1 and rows[0].time == 1.0


def test_tracer_and_recorder_share_vocabulary():
    """The same commit run produces arrow rows from both sources."""
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))
    rec = SpanRecorder()
    system.tracer.attach_obs(rec)
    run_commit(system)
    tracer_arrows = {r.arrow_to for r in extract_rows(system.tracer)
                     if r.arrow_to is not None}
    span_arrows = {r.arrow_to for r in extract_rows(rec)
                   if r.arrow_to is not None}
    assert tracer_arrows == span_arrows >= {"a", "b"}
