"""Unit tests for the tracer/counters."""

from repro.sim.tracing import NullTracer, Tracer, summarize_counts


def test_record_counts_and_stores():
    t = Tracer()
    t.record(1.0, "log.force", site="a", lsn=5)
    t.record(2.0, "log.force", site="b")
    assert t.count("log.force") == 2
    assert len(t.events) == 2
    assert t.events[0].detail == {"lsn": 5}


def test_counters_without_events():
    t = Tracer(keep_events=False)
    t.record(1.0, "x")
    assert t.count("x") == 1
    assert t.events == []


def test_count_prefix():
    t = Tracer()
    t.record(0.0, "net.datagram")
    t.record(0.0, "net.multicast")
    t.record(0.0, "log.force")
    assert t.count_prefix("net.") == 2


def test_of_kind_and_between():
    t = Tracer()
    t.record(1.0, "a")
    t.record(5.0, "b")
    t.record(9.0, "a")
    assert len(t.of_kind("a")) == 2
    assert [e.kind for e in t.between(4.0, 10.0)] == ["b", "a"]


def test_snapshot_delta():
    t = Tracer()
    t.record(0.0, "x")
    before = t.snapshot()
    t.record(0.0, "x")
    t.record(0.0, "y")
    delta = Tracer.delta(before, t.snapshot())
    assert delta == {"x": 1, "y": 1}


def test_delta_omits_zero_kinds():
    t = Tracer()
    t.record(0.0, "x")
    before = t.snapshot()
    assert Tracer.delta(before, t.snapshot()) == {}


def test_null_tracer_drops_everything():
    t = NullTracer()
    t.record(0.0, "x")
    assert t.count("x") == 0


def test_summarize_counts():
    t = Tracer()
    t.record(0.0, "a")
    assert summarize_counts(t, ["a", "b"]) == {"a": 1, "b": 0}


def test_clear():
    t = Tracer()
    t.record(0.0, "a")
    t.clear()
    assert t.count("a") == 0
    assert t.events == []


def test_between_bisect_matches_linear_scan_on_long_trace():
    """Regression for the bisect rewrite: same answers as the linear
    filter on a long trace with heavy timestamp duplication."""
    t = Tracer()
    for i in range(10_000):
        t.record(float(i // 4), "tick", seq=i)  # 4 events per instant
    for t0, t1 in [(0.0, 0.0), (10.0, 20.0), (17.3, 17.9),
                   (2_499.0, 2_499.0), (2_498.5, 9_999.0),
                   (-5.0, 3.0), (3_000.0, 2_000.0)]:
        expected = [e for e in t.events if t0 <= e.time <= t1]
        assert t.between(t0, t1) == expected


def test_between_bounds_inclusive():
    t = Tracer()
    t.record(1.0, "a")
    t.record(2.0, "b")
    t.record(3.0, "c")
    assert [e.kind for e in t.between(1.0, 3.0)] == ["a", "b", "c"]
    assert [e.kind for e in t.between(2.0, 2.0)] == ["b"]
    assert t.between(4.0, 9.0) == []


def test_attach_obs_installs_and_removes_sink():
    t = Tracer()
    assert t.obs is None
    sink = object()
    t.attach_obs(sink)
    assert t.obs is sink
    t.attach_obs(None)
    assert t.obs is None
