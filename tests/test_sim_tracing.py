"""Unit tests for the tracer/counters."""

from repro.sim.tracing import NullTracer, Tracer, summarize_counts


def test_record_counts_and_stores():
    t = Tracer()
    t.record(1.0, "log.force", site="a", lsn=5)
    t.record(2.0, "log.force", site="b")
    assert t.count("log.force") == 2
    assert len(t.events) == 2
    assert t.events[0].detail == {"lsn": 5}


def test_counters_without_events():
    t = Tracer(keep_events=False)
    t.record(1.0, "x")
    assert t.count("x") == 1
    assert t.events == []


def test_count_prefix():
    t = Tracer()
    t.record(0.0, "net.datagram")
    t.record(0.0, "net.multicast")
    t.record(0.0, "log.force")
    assert t.count_prefix("net.") == 2


def test_of_kind_and_between():
    t = Tracer()
    t.record(1.0, "a")
    t.record(5.0, "b")
    t.record(9.0, "a")
    assert len(t.of_kind("a")) == 2
    assert [e.kind for e in t.between(4.0, 10.0)] == ["b", "a"]


def test_snapshot_delta():
    t = Tracer()
    t.record(0.0, "x")
    before = t.snapshot()
    t.record(0.0, "x")
    t.record(0.0, "y")
    delta = Tracer.delta(before, t.snapshot())
    assert delta == {"x": 1, "y": 1}


def test_delta_omits_zero_kinds():
    t = Tracer()
    t.record(0.0, "x")
    before = t.snapshot()
    assert Tracer.delta(before, t.snapshot()) == {}


def test_null_tracer_drops_everything():
    t = NullTracer()
    t.record(0.0, "x")
    assert t.count("x") == 0


def test_summarize_counts():
    t = Tracer()
    t.record(0.0, "a")
    assert summarize_counts(t, ["a", "b"]) == {"a": 1, "b": 0}


def test_clear():
    t = Tracer()
    t.record(0.0, "a")
    t.clear()
    assert t.count("a") == 0
    assert t.events == []
