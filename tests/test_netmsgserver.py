"""Unit tests for the NetMsgServer: name service + remote RPC."""

import pytest

from repro.config import rt_pc_profile
from repro.mach.ipc import IpcFabric
from repro.mach.message import Message
from repro.mach.netmsgserver import NameDirectory, NetMsgServer
from repro.mach.site import Site
from repro.net.lan import Lan
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.sim.rng import RngStreams
from repro.sim.tracing import Tracer


def build_pair():
    k = Kernel()
    cost = rt_pc_profile().with_overrides(datagram_send_jitter=0.0,
                                          datagram_jitter_base=0.0,
                                          datagram_jitter_per_load=0.0)
    tracer = Tracer()
    lan = Lan(k, cost, RngStreams(0), tracer)
    fabric = IpcFabric(k, cost, tracer)
    directory = NameDirectory()
    sites = {}
    nms = {}
    for name in ("a", "b"):
        site = Site(k, name, cost)
        lan.register_site(name, site)
        fabric.sites[name] = site
        sites[name] = site
        nms[name] = NetMsgServer(k, lan, fabric, directory, name, cost, tracer)
    return k, sites, nms, directory, fabric


def test_directory_register_lookup():
    k, sites, nms, directory, fabric = build_pair()
    port = sites["b"].create_port("svc")
    directory.register("svc", "b", port)
    assert directory.lookup("svc") == ("b", port)
    assert directory.services() == ["svc"]
    directory.unregister("svc")
    with pytest.raises(KeyError):
        directory.lookup("svc")


def test_lookup_charges_local_rpc():
    k, sites, nms, directory, fabric = build_pair()
    port = sites["a"].create_port("svc")
    directory.register("svc", "a", port)

    def body():
        result = yield from nms["a"].lookup("svc")
        return (result, k.now)

    proc = Process(k, body())
    k.run()
    assert proc.done.value == (("a", port), 3.0)


def test_remote_rpc_round_trip_is_paper_19_1ms():
    k, sites, nms, directory, fabric = build_pair()
    port = sites["b"].create_port("svc")

    def server():
        msg = yield from port.receive()
        fabric.reply(msg, msg.reply("pong"))

    def client():
        reply = yield from nms["a"].remote_call("b", port,
                                                Message(kind="ping"))
        return (reply.kind, k.now)

    Process(k, server())
    proc = Process(k, client())
    k.run()
    kind, elapsed = proc.done.value
    assert kind == "pong"
    assert elapsed == pytest.approx(19.1, abs=0.01)


def test_remote_rpc_timeout_on_dead_destination():
    k, sites, nms, directory, fabric = build_pair()
    port = sites["b"].create_port("svc")
    sites["b"].crash()

    def client():
        reply = yield from nms["a"].remote_call("b", port,
                                                Message(kind="ping"),
                                                timeout=100.0)
        return reply

    proc = Process(k, client())
    k.run()
    assert proc.done.value is None
    assert k.now >= 100.0


def test_call_service_local_is_plain_ipc():
    k, sites, nms, directory, fabric = build_pair()
    port = sites["a"].create_port("svc")
    directory.register("svc", "a", port)

    def server():
        msg = yield from port.receive()
        fabric.reply(msg, msg.reply("ok"))

    def client():
        reply = yield from nms["a"].call_service("svc", Message(kind="x"))
        return (reply.kind, k.now)

    Process(k, server())
    proc = Process(k, client())
    k.run()
    assert proc.done.value == ("ok", 3.0)


def test_remote_rpc_respects_partitions():
    k, sites, nms, directory, fabric = build_pair()
    port = sites["b"].create_port("svc")
    lan = nms["a"].lan
    lan.partition([["a"], ["b"]])

    def client():
        reply = yield from nms["a"].remote_call("b", port,
                                                Message(kind="ping"),
                                                timeout=50.0)
        return reply

    proc = Process(k, client())
    k.run()
    assert proc.done.value is None
