"""repro.lint.flow: the whole-program layer sees what per-file rules
cannot — taint through helpers in other modules, IO reachable from
core/, unguarded COMMIT sends on one CFG path — plus the engine pieces
(call graph, path enumeration) on synthetic trees, the inline
``# lint: bounded()`` acknowledgement, and the lint runtime budget."""

import textwrap
import time
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.engine import build_context
from repro.lint.flow import flow_program
from repro.lint.flow import cfg


def _write(root: Path, rel: str, source: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))


def _ids(report, rule):
    return [f for f in report.findings if f.rule == rule]


# ------------------------------------------------------------ call graph


class TestCallGraph:
    def test_methods_nested_calls_and_aliased_imports(self, tmp_path):
        _write(tmp_path, "analysis/util.py", """
            import time as clock


            def stamp():
                return clock.time()


            def wrapped():
                return stamp() + 1
            """)
        _write(tmp_path, "sim/engine.py", """
            from analysis.util import wrapped


            class Kernel:
                def tick(self):
                    return wrapped()


            class Runner:
                def __init__(self):
                    self.kernel = Kernel()

                def go(self):
                    return self.kernel.tick()
            """)
        program = flow_program(build_context(tmp_path))

        # Aliased import normalizes to the real primitive.
        stamp = program.funcs["analysis/util.py::stamp"]
        assert any(ref.dotted == "time.time" and ref.is_call
                   for ref in stamp.externals)
        # Nested project call: wrapped -> stamp.
        assert "analysis/util.py::stamp" in list(
            program.callees("analysis/util.py::wrapped"))
        # Cross-module import binding: Kernel.tick -> wrapped.
        assert "analysis/util.py::wrapped" in list(
            program.callees("sim/engine.py::Kernel.tick"))
        # Attribute call through a constructor-typed attribute.
        assert "sim/engine.py::Kernel.tick" in list(
            program.callees("sim/engine.py::Runner.go"))


# --------------------------------------------------------- determinism


class TestFlowDeterminism:
    @pytest.fixture
    def tainted_tree(self, tmp_path):
        _write(tmp_path, "analysis/util.py", """
            import time


            def stamp():
                return time.time()


            def indirection():
                return stamp()
            """)
        _write(tmp_path, "sim/kernel.py", """
            from analysis.util import indirection


            class Kernel:
                def now(self):
                    return indirection()
            """)
        return tmp_path

    def test_taint_through_return_values(self, tainted_tree):
        report = run_lint(root=tainted_tree, rule_ids=["flow-determinism"])
        found = _ids(report, "flow-determinism")
        assert len(found) == 1
        f = found[0]
        assert "kernel.py" in f.file
        # Witness chain names every hop down to the primitive.
        assert "indirection" in f.message and "stamp" in f.message \
            and "time.time" in f.message

    def test_invisible_to_per_file_rules(self, tainted_tree):
        report = run_lint(root=tainted_tree,
                          rule_ids=["wallclock", "unseeded-random",
                                    "no-environ"])
        # The primitive lives outside sim scope; the helper call inside
        # sim scope is opaque to single-file analysis.
        assert not [f for f in report.findings if "kernel.py" in f.file]

    def test_in_scope_primitives_left_to_per_file_rules(self, tmp_path):
        _write(tmp_path, "sim/direct.py", """
            import time


            def now():
                return time.time()


            class Kernel:
                def tick(self):
                    return now()
            """)
        flow = run_lint(root=tmp_path, rule_ids=["flow-determinism"])
        assert not _ids(flow, "flow-determinism")   # no duplicate findings
        perfile = run_lint(root=tmp_path, rule_ids=["wallclock"])
        assert _ids(perfile, "wallclock")


# -------------------------------------------------------------- purity


class TestSansIoPurity:
    def test_import_fence_reachability_and_ctor_fence(self, tmp_path):
        _write(tmp_path, "core/machine.py", """
            import socket


            def _resolve():
                return socket.gethostname()


            class Proto:
                def __init__(self, tid, kernel):
                    self.tid = tid
                    self.kernel = kernel

                def on_message(self, msg):
                    return []

                def lookup(self):
                    return _resolve()
            """)
        report = run_lint(root=tmp_path, rule_ids=["flow-sansio-purity"])
        keys = {f.key for f in _ids(report, "flow-sansio-purity")}
        assert "import:core/machine.py:socket" in keys
        assert "io:core/machine.py::_resolve" in keys
        assert any(k.startswith("reach:core/machine.py::Proto.lookup")
                   for k in keys)
        assert "ctor:core/machine.py::Proto:kernel" in keys

    def test_pure_module_stays_clean(self, tmp_path):
        _write(tmp_path, "core/clean.py", """
            from enum import Enum
            from dataclasses import dataclass


            @dataclass
            class Notice:
                tid: str


            class Machine:
                def __init__(self, tid):
                    self.tid = tid

                def on_message(self, msg):
                    return [Notice(self.tid)]
            """)
        report = run_lint(root=tmp_path, rule_ids=["flow-sansio-purity"])
        assert not _ids(report, "flow-sansio-purity")


# ----------------------------------------------------- force discipline


_BAD_MACHINE = """
    class BadCoordinator:
        def __init__(self, tid):
            self.tid = tid

        def on_message(self, msg):
            if msg.kind == "inquiry":
                # Seeded violation: the COMMIT claim races the force on
                # this early-return path.
                return [SendDatagram("s1", CommitNotice(tid=self.tid,
                                                        sender="c"))]
            return [ForceLog("commit-record", "COMMIT_FORCE")]

        def on_log_forced(self, token):
            if token == "COMMIT_FORCE":
                # Guarded: force completion dominates this send.
                return [SendDatagram("s1", CommitNotice(tid=self.tid,
                                                        sender="c"))]
            return []
    """


class TestForceDiscipline:
    def test_unguarded_path_flagged_guarded_path_clean(self, tmp_path):
        _write(tmp_path, "core/bad2pc.py", _BAD_MACHINE)
        report = run_lint(root=tmp_path, rule_ids=["flow-force-discipline"])
        found = _ids(report, "flow-force-discipline")
        assert len(found) == 1
        assert "on_message" in found[0].message
        assert "CommitNotice" in found[0].message

    def test_invisible_to_per_file_rules(self, tmp_path):
        _write(tmp_path, "core/bad2pc.py", _BAD_MACHINE)
        report = run_lint(
            root=tmp_path,
            rule_ids=["lazy-log-force", "wallclock", "unseeded-random"])
        assert not report.findings

    def test_force_in_same_effect_list_does_not_guard(self, tmp_path):
        _write(tmp_path, "core/racy.py", """
            class RacyMachine:
                def __init__(self, tid):
                    self.tid = tid

                def on_message(self, msg):
                    # The host executes effects asynchronously: listing
                    # the force first guards nothing.
                    return [
                        ForceLog("commit-record", "COMMIT_FORCE"),
                        SendDatagram("s1", CommitNotice(tid=self.tid,
                                                        sender="c")),
                    ]
            """)
        report = run_lint(root=tmp_path, rule_ids=["flow-force-discipline"])
        assert len(_ids(report, "flow-force-discipline")) == 1


# ----------------------------------------------------- path enumeration


class TestCfgPaths:
    def test_early_return_paths_keep_distinct_guards(self, tmp_path):
        _write(tmp_path, "core/paths.py", """
            class M:
                def __init__(self):
                    self.count = 0

                def on_message(self, msg):
                    if msg.kind == "skip":
                        return []
                    if msg.kind == "trace":
                        return [Trace("seen", {})]
                    return [ForceLog("rec", "TOK")]
            """)
        program = flow_program(build_context(tmp_path))
        fn = program.funcs["core/paths.py::M.on_message"]
        paths = cfg.explore(program, fn, cfg.effect_names_for(program))
        assert len(paths) == 3
        with_force = [p for p in paths if any(
            isinstance(e, cfg.EffectEv) and e.kind == "ForceLog"
            for e in p.events)]
        assert len(with_force) == 1
        # The force path is guarded by the *negation* of both early
        # returns.
        rendered = {a.render() for a in with_force[0].facts}
        assert any("skip" in r and "not" in r for r in rendered)
        assert any("trace" in r and "not" in r for r in rendered)


# --------------------------------------------------------- bounded ack


class TestBoundedAck:
    GROWER = """
        class Tracker:
            def __init__(self):
                self.seen = []{init_ack}

            def on_event(self, event):
                self.seen.append(event){grow_ack}
        """

    def _report(self, tmp_path, init_ack="", grow_ack=""):
        _write(tmp_path, "sim/tracker.py",
               self.GROWER.format(init_ack=init_ack, grow_ack=grow_ack))
        return run_lint(root=tmp_path, rule_ids=["unbounded-growth"])

    def test_unacked_growth_still_fires(self, tmp_path):
        assert _ids(self._report(tmp_path), "unbounded-growth")

    def test_ack_on_grow_site(self, tmp_path):
        report = self._report(
            tmp_path, grow_ack="  # lint: bounded(scratch, reset per run)")
        assert not _ids(report, "unbounded-growth")

    def test_ack_on_init_construction_line(self, tmp_path):
        report = self._report(
            tmp_path, init_ack="  # lint: bounded(bounded by config)")
        assert not _ids(report, "unbounded-growth")

    def test_ack_requires_a_reason(self, tmp_path):
        report = self._report(tmp_path, grow_ack="  # lint: bounded()")
        assert _ids(report, "unbounded-growth")


# ------------------------------------------------------- live-tree gates


def test_live_tree_flow_rules_clean_within_budget():
    """All four whole-program analyses hold on the real tree, and the
    full 15-rule run (flow included) fits the CI latency budget."""
    start = time.perf_counter()
    report = run_lint(baseline_path=None)
    elapsed = time.perf_counter() - start
    flow_rules = {"flow-determinism", "flow-sansio-purity",
                  "flow-force-discipline", "flow-protocol-graph"}
    assert flow_rules <= set(report.rules_run)
    assert not [f for f in report.findings if f.rule in flow_rules], (
        [f.message for f in report.findings])
    assert elapsed < 30.0, (
        f"whole-tree lint took {elapsed:.1f}s; budget is 30s")


def test_baseline_is_empty():
    """The legacy baseline burned down to nothing: every accepted
    grow-only container now carries its justification inline."""
    import json
    root = Path(__file__).resolve().parents[1]
    baseline = json.loads((root / "lint-baseline.json").read_text())
    assert baseline["entries"] == []
