"""repro.obs.spans: recorder API, tid extraction, trees, count-only mode."""

import pytest

from repro.obs.spans import Span, SpanRecorder, assemble_tree, tid_of


class _Obj:
    def __init__(self, **kw):
        for k, v in kw.items():
            setattr(self, k, v)


# ------------------------------------------------------------------ tid_of


def test_tid_of_direct_attribute():
    assert tid_of(_Obj(tid="T1@a")) == "T1@a"


def test_tid_of_payload_attribute():
    assert tid_of(_Obj(payload=_Obj(tid="T2@a"))) == "T2@a"


def test_tid_of_body_dict():
    assert tid_of(_Obj(body={"tid": "T3@a"})) == "T3@a"


def test_tid_of_body_payload():
    assert tid_of(_Obj(body={"payload": _Obj(tid="T4@a")})) == "T4@a"


def test_tid_of_trans_dict():
    assert tid_of(_Obj(trans={"tid": "T5@a"})) == "T5@a"


def test_tid_of_stringifies_non_strings():
    class FakeTid:
        def __str__(self):
            return "T6@a"

    assert tid_of(_Obj(tid=FakeTid())) == "T6@a"


def test_tid_of_none_when_absent():
    assert tid_of(_Obj(body={"x": 1})) is None
    assert tid_of(object()) is None


# ---------------------------------------------------------------- recorder


def test_add_records_closed_span():
    rec = SpanRecorder()
    sid = rec.add(1.0, 2.5, "log.force", site="a", tid="T1@a", lsn=7)
    assert sid is not None
    (span,) = rec.spans
    assert span.kind == "log.force"
    assert span.duration == pytest.approx(1.5)
    assert span.closed
    assert span.detail == {"lsn": 7}
    assert rec.count("log.force") == 1


def test_begin_end_bracket_and_balance():
    rec = SpanRecorder()
    sid = rec.begin(1.0, "cpu.service", site="a")
    assert not rec.balanced
    assert rec.open_spans()[0].sid == sid
    rec.end(sid, 3.0)
    assert rec.balanced
    assert rec.spans[0].duration == pytest.approx(2.0)


def test_tid_coerced_to_str_in_keep_mode():
    class FakeTid:
        def __str__(self):
            return "T9@a"

    rec = SpanRecorder()
    rec.add(0.0, 1.0, "lock.get", site="a", tid=FakeTid())
    sid = rec.begin(1.0, "lock.wait", site="a", tid=FakeTid())
    rec.end(sid, 2.0)
    rec.instant(2.0, "server.drop_locks", site="a", tid=FakeTid())
    assert all(s.tid == "T9@a" for s in rec.all_spans())
    assert len(rec.for_tid("T9@a")) == 3


def test_instant_has_zero_duration():
    rec = SpanRecorder()
    rec.instant(5.0, "tranman.complete", site="a", tid="T1@a")
    (span,) = rec.instants
    assert span.t0 == span.t1 == 5.0


def test_gauge_samples_kept_in_order():
    rec = SpanRecorder()
    rec.gauge(1.0, "lan.in_flight", 1)
    rec.gauge(2.0, "lan.in_flight", 0)
    assert rec.gauges["lan.in_flight"] == [(1.0, 1), (2.0, 0)]


def test_domain_hooks_classify_kinds():
    rec = SpanRecorder()
    rec.ipc(0.0, 1.5, "inline", "a", _Obj(tid="T1@a", kind="operation"))
    rec.net(2.0, 12.0, "a", "b", _Obj(tid="T1@a"))
    rec.net(2.0, 12.0, "a", "b", _Obj(tid="T1@a"), rpc=True)
    rec.net(2.0, 12.0, "a", "b", _Obj(tid="T1@a"), multicast=True)
    sid = rec.begin_cpu(13.0, "tranman", "a", _Obj(tid="T1@a", kind="x"))
    rec.end(sid, 13.8)
    kinds = sorted(s.kind for s in rec.spans)
    assert kinds == ["cpu.service", "ipc.inline", "net.datagram",
                     "net.multicast", "rpc.netmsg"]
    assert all(s.tid == "T1@a" for s in rec.spans)


def test_net_unwraps_datagram_payload_name():
    class PrepareRequest:
        tid = "T1@a"

    rec = SpanRecorder()
    rec.net(0.0, 10.0, "a", "b", _Obj(payload=PrepareRequest()))
    assert rec.spans[0].detail["msg_kind"] == "PrepareRequest"
    assert rec.spans[0].detail["dst"] == "b"


def test_queries_and_clear():
    rec = SpanRecorder()
    rec.add(0.0, 1.0, "lock.get", site="a", tid="T1@a")
    rec.add(1.0, 2.0, "lock.get", site="a", tid="T2@a")
    rec.instant(2.0, "tranman.complete", site="a", tid="T1@a")
    assert rec.tids() == ["T1@a", "T2@a"]
    assert len(rec.for_tid("T1@a")) == 2
    assert len(rec.of_kind("lock.get")) == 2
    rec.clear()
    assert rec.all_spans() == [] and rec.counters == {}


# -------------------------------------------------------------- count-only


def test_count_only_retains_nothing_but_counts_exactly():
    rec = SpanRecorder(keep=False)
    rec.ipc(0.0, 1.5, "inline", "a", _Obj(tid="T1@a", kind="op"))
    rec.ipc(0.0, 1.5, "oneway", "a", _Obj())
    rec.net(0.0, 10.0, "a", "b", _Obj())
    rec.net(0.0, 10.0, "a", "b", _Obj(), rpc=True)
    rec.add(0.0, 1.0, "lock.get", site="a", tid="T1@a")
    sid = rec.begin(0.0, "log.force", site="a")
    rec.end(sid, 15.0)
    rec.instant(1.0, "tranman.complete")
    rec.count_cpu()
    rec.gauge(1.0, "lan.in_flight", 1)
    assert rec.spans == [] and rec.instants == []
    assert not rec.gauges
    assert rec.counters == {"ipc.inline": 1, "ipc.oneway": 1,
                            "net.datagram": 1, "rpc.netmsg": 1,
                            "lock.get": 1, "log.force": 1,
                            "tranman.complete": 1, "cpu.service": 1}
    assert rec.balanced


def test_count_only_tracks_begin_end_pairing():
    rec = SpanRecorder(keep=False)
    rec.begin(0.0, "log.force")
    assert not rec.balanced
    rec.end(None, 1.0)
    assert rec.balanced


def test_count_only_unknown_ipc_flavour_still_counted():
    rec = SpanRecorder(keep=False)
    rec.ipc(0.0, 1.0, "weird", "a", _Obj())
    assert rec.count("ipc.weird") == 1


# ------------------------------------------------------------------- trees


def _span(sid, kind, site, t0, t1, tid="T1@a", **detail):
    return Span(sid, kind, site, t0, t1, tid, detail)


def test_assemble_tree_nests_by_containment():
    spans = [
        _span(1, "cpu.service", "a", 0.0, 10.0),
        _span(2, "log.force", "a", 2.0, 8.0),
        _span(3, "lock.get", "a", 3.0, 4.0),
        _span(4, "cpu.service", "a", 12.0, 14.0),
    ]
    tree = assemble_tree(spans, "T1@a")
    roots = tree.roots["a"]
    assert [r.span.sid for r in roots] == [1, 4]
    assert [c.span.sid for c in roots[0].children] == [2]
    assert [c.span.sid for c in roots[0].children[0].children] == [3]
    assert len(list(tree.nodes())) == 4


def test_assemble_tree_separates_sites():
    spans = [
        _span(1, "cpu.service", "a", 0.0, 10.0),
        _span(2, "cpu.service", "b", 1.0, 5.0),
    ]
    tree = assemble_tree(spans, "T1@a")
    assert set(tree.roots) == {"a", "b"}
    assert all(len(r) == 1 for r in tree.roots.values())


def test_assemble_tree_cross_site_edges():
    spans = [
        _span(1, "net.datagram", "a", 0.0, 10.0, dst="b"),
        _span(2, "cpu.service", "b", 11.0, 12.0),
        _span(3, "cpu.service", "b", 15.0, 16.0),
    ]
    tree = assemble_tree(spans, "T1@a")
    ((src, dst),) = tree.edges
    assert src.sid == 1 and dst.sid == 2  # first span after arrival


def test_assemble_tree_ignores_other_tids_and_open_spans():
    spans = [
        _span(1, "cpu.service", "a", 0.0, 1.0),
        _span(2, "cpu.service", "a", 0.0, 2.0, tid="T2@a"),
        _span(3, "cpu.service", "a", 0.0, None),
    ]
    tree = assemble_tree(spans, "T1@a")
    assert [n.span.sid for n in tree.nodes()] == [1]
