"""Heuristic commit (paper §5, LU 6.2): resolving blocked transactions.

"A practical approach to blocking is the 'heuristic commit' feature of
LU 6.2, which allows a blocked transaction to be resolved either by an
operator or by a program.  While not guaranteeing correctness, this
approach does not slow down commitment in the regular case."
"""

import pytest

from repro import CamelotSystem, Outcome, SystemConfig, TID
from repro.core.outcomes import Vote
from repro.core.messages import AbortNotice, CommitNotice
from repro.core.twophase import (
    ProtocolViolation,
    SubordinateState,
    TwoPhaseSubordinate,
)

from tests.machine_harness import MachineHost

TID1 = TID("T1@a")


def blocked_sub():
    host = MachineHost(TwoPhaseSubordinate(TID1, "b", "a")).start()
    host.local_prepared(Vote.YES)
    host.complete_force()
    return host


# ---------------------------------------------------------- unit level


def test_heuristic_commit_releases_locks_immediately():
    host = blocked_sub()
    host.execute(host.machine.heuristic_resolve(Outcome.COMMITTED))
    assert host.local_commits == [TID1]
    assert host.written_kinds() == ["commit"]
    assert host.machine.state is SubordinateState.HEURISTIC


def test_heuristic_abort_undoes_immediately():
    host = blocked_sub()
    host.execute(host.machine.heuristic_resolve(Outcome.ABORTED))
    assert host.local_aborts == [TID1]
    assert host.written_kinds() == ["abort"]


def test_correct_guess_closes_without_damage():
    host = blocked_sub()
    host.execute(host.machine.heuristic_resolve(Outcome.COMMITTED))
    host.deliver(CommitNotice(tid=TID1, sender="a"))
    assert not host.machine.heuristic_damage
    assert host.forgotten == [TID1]
    # The coordinator still gets its ack.
    assert any(type(m).__name__ == "CommitAck" for _, m in host.sent)


def test_wrong_guess_reports_heuristic_damage():
    host = blocked_sub()
    host.execute(host.machine.heuristic_resolve(Outcome.COMMITTED))
    host.deliver(AbortNotice(tid=TID1, sender="a"))
    assert host.machine.heuristic_damage
    assert any(t.kind == "2pc.heuristic_damage" for t in host.traces)
    assert host.machine.outcome is Outcome.ABORTED  # truth recorded


def test_wrong_guess_other_direction():
    host = blocked_sub()
    host.execute(host.machine.heuristic_resolve(Outcome.ABORTED))
    host.deliver(CommitNotice(tid=TID1, sender="a"))
    assert host.machine.heuristic_damage


def test_heuristic_keeps_inquiring_for_the_truth():
    from repro.core.twophase import OUTCOME_TIMER

    host = blocked_sub()
    host.execute(host.machine.heuristic_resolve(Outcome.COMMITTED))
    host.fire_timer(OUTCOME_TIMER)
    assert any(type(m).__name__ == "TxnInquiry" for _, m in host.sent)


def test_heuristic_only_from_prepared():
    host = MachineHost(TwoPhaseSubordinate(TID1, "b", "a")).start()
    with pytest.raises(ProtocolViolation):
        host.machine.heuristic_resolve(Outcome.COMMITTED)


# ------------------------------------------------------- system level


def test_operator_unblocks_a_stranded_subordinate():
    """End to end: coordinator dies in the window; the operator
    heuristically commits at b; locks release; when the coordinator
    recovers with no commit record (presumed abort), damage is
    reported."""
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1, "c": 1}))
    app = system.application("a")
    state = {}

    def workload():
        tid = yield from app.begin()
        state["tid"] = tid
        for s in system.default_services():
            yield from app.write(tid, s, "x", 9)
        yield from app.commit(tid)

    system.spawn(workload(), name="txn")
    system.failures.crash_at(138.0, "a")
    system.run_for(8_000.0)  # blocked, inquiring
    tid = state["tid"]
    assert system.server("server0@b").locks.locked_objects() == ["x"]

    system.tranman("b").heuristic_resolve(tid, Outcome.COMMITTED)
    system.run_for(1_000.0)
    assert system.server("server0@b").locks.locked_objects() == []
    assert system.server("server0@b").peek("x") == 9  # exposed!

    # The coordinator returns with no trace: presumed abort.
    system.failures.restart_at(system.kernel.now + 100.0, "a")
    system.run_for(20_000.0)
    assert system.tracer.count("2pc.heuristic_damage") == 1
    # c (never heuristically resolved) aborted cleanly.
    assert system.server("server0@c").peek("x") is None


def test_heuristic_resolve_requires_blocked_machine():
    system = CamelotSystem(SystemConfig(sites={"a": 1}))
    with pytest.raises(ValueError):
        system.tranman("a").heuristic_resolve(TID("T9@a"),
                                              Outcome.COMMITTED)
