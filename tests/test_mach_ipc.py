"""Unit tests for messages, ports, and the local IPC fabric."""

import pytest

from repro.config import rt_pc_profile
from repro.mach.ipc import DeadCallError, IpcFabric
from repro.mach.message import Message
from repro.mach.ports import DeadPortError, Port
from repro.mach.site import Site
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.sim.tracing import Tracer

from tests.conftest import run_proc


def make_fabric(kernel):
    return IpcFabric(kernel, rt_pc_profile(), Tracer())


# ------------------------------------------------------------- Message


def test_message_ids_unique():
    assert Message(kind="a").msg_id != Message(kind="a").msg_id


def test_message_reply_preserves_trans():
    msg = Message(kind="op", trans={"tid": "T1@a"})
    reply = msg.reply("op_ok", value=3)
    assert reply.trans == {"tid": "T1@a"}
    assert reply.body == {"value": 3}


def test_outofline_flag():
    assert Message(kind="x", outofline_kb=4.0).is_outofline
    assert not Message(kind="x").is_outofline


# ---------------------------------------------------------------- Port


def test_port_receive_fifo():
    k = Kernel()
    port = Port(k, "a", name="p")
    port.enqueue(Message(kind="m1"))
    port.enqueue(Message(kind="m2"))

    def body():
        first = yield from port.receive()
        second = yield from port.receive()
        return (first.kind, second.kind)

    assert run_proc(k, body()) == ("m1", "m2")


def test_dead_port_rejects_traffic():
    k = Kernel()
    port = Port(k, "a")
    port.destroy()
    with pytest.raises(DeadPortError):
        port.enqueue(Message(kind="x"))
    with pytest.raises(DeadPortError):
        next(port.receive())


def test_destroy_drains_queued_mail():
    k = Kernel()
    port = Port(k, "a")
    port.enqueue(Message(kind="x"))
    dropped = port.destroy()
    assert len(dropped) == 1


# ---------------------------------------------------------------- IPC


def test_inline_send_latency():
    k = Kernel()
    fabric = make_fabric(k)
    port = Port(k, "a")
    fabric.send(port, Message(kind="x"))
    k.run()
    assert k.now == 1.5
    assert len(port.queue) == 1


def test_oneway_and_outofline_latencies():
    k = Kernel()
    fabric = make_fabric(k)
    msg = Message(kind="x", outofline_kb=1.0)
    assert fabric.latency_for("oneway", msg) == 1.0
    assert fabric.latency_for("outofline", msg) == pytest.approx(
        5.5 + (8.4 + 180.0) / 1000.0)
    assert fabric.latency_for("immediate", msg) == 0.0


def test_unknown_flavour_rejected():
    k = Kernel()
    fabric = make_fabric(k)
    with pytest.raises(ValueError):
        fabric.latency_for("bogus", Message(kind="x"))


def test_call_round_trip_costs_two_legs():
    """Request + reply at 1.5 each: the paper's 3 ms server IPC."""
    k = Kernel()
    fabric = make_fabric(k)
    port = Port(k, "a")

    def server():
        msg = yield from port.receive()
        fabric.reply(msg, msg.reply("ok"))

    def client():
        reply = yield from fabric.call(port, Message(kind="ping"),
                                       sender_site="a")
        return (reply.kind, k.now)

    Process(k, server())
    proc = Process(k, client())
    k.run()
    assert proc.done.value == ("ok", 3.0)


def test_send_to_crashed_site_dropped():
    k = Kernel()
    fabric = make_fabric(k)
    site = Site(k, "a", rt_pc_profile())
    fabric.sites["a"] = site
    port = site.create_port("p")
    fabric.send(port, Message(kind="x"))
    site.crash()
    k.run()
    # In-flight mail to a crashed site is lost, not queued.
    assert port.dead


def test_reply_to_crashed_caller_dropped():
    k = Kernel()
    fabric = make_fabric(k)
    site_a = Site(k, "a", rt_pc_profile())
    fabric.sites["a"] = site_a
    port = Port(k, "b")
    got = []

    def server():
        msg = yield from port.receive()
        site_a.crash()
        fabric.reply(msg, msg.reply("ok"))

    def client():
        reply = yield from fabric.call(port, Message(kind="ping"),
                                       sender_site="a")
        got.append(reply)

    Process(k, server())
    Process(k, client())
    k.run()
    assert got == []  # caller never resumed


def test_fail_call_raises_dead_call():
    k = Kernel()
    fabric = make_fabric(k)
    port = Port(k, "b")

    def server():
        msg = yield from port.receive()
        fabric.fail_call(msg)

    def client():
        with pytest.raises(DeadCallError):
            yield from fabric.call(port, Message(kind="ping"),
                                   sender_site="a")
        return "handled"

    Process(k, server())
    proc = Process(k, client())
    k.run()
    assert proc.done.value == "handled"
