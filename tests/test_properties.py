"""System-wide property tests (hypothesis).

The headline invariant: **atomicity** — under randomized crash times,
protocols, and failure combinations, no two sites ever decide a
transaction differently, and every surviving decision is consistent
with the values on disk.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CamelotSystem, Outcome, ProtocolKind, SystemConfig
from repro.log.records import RecordKind

SLOW = settings(max_examples=12, deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.data_too_large])


def run_with_failure(protocol, crash_site, crash_at, restart, seed):
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1, "c": 1},
                                        seed=seed))
    app = system.application("a")
    state = {}

    def workload():
        tid = yield from app.begin(protocol=protocol)
        state["tid"] = str(tid)
        for s in system.default_services():
            yield from app.write(tid, s, "x", 1)
        try:
            outcome = yield from app.commit(tid, protocol=protocol)
            state["outcome"] = outcome
        except BaseException:
            pass

    if crash_site is not None:
        system.failures.crash_at(crash_at, crash_site)
        if restart:
            system.failures.restart_at(crash_at + 4_000.0, crash_site)
    system.spawn(workload(), name="txn")
    system.run_for(45_000.0)
    return system, state


def decided_outcomes(system, state):
    tid = state.get("tid")
    found = {}
    for site in system.site_names():
        tomb = system.tranman(site).tombstones.get(tid)
        if tomb is not None:
            found[site] = tomb
    return found


@SLOW
@given(protocol=st.sampled_from([ProtocolKind.TWO_PHASE,
                                 ProtocolKind.NON_BLOCKING]),
       crash_site=st.sampled_from(["a", "b", "c", None]),
       crash_at=st.floats(min_value=5.0, max_value=400.0),
       restart=st.booleans(),
       seed=st.integers(min_value=0, max_value=10_000))
def test_no_two_sites_decide_differently(protocol, crash_site, crash_at,
                                         restart, seed):
    system, state = run_with_failure(protocol, crash_site, crash_at,
                                     restart, seed)
    outcomes = set(decided_outcomes(system, state).values())
    assert len(outcomes) <= 1, f"split brain: {outcomes}"


@SLOW
@given(crash_at=st.floats(min_value=100.0, max_value=260.0),
       seed=st.integers(min_value=0, max_value=10_000))
def test_nb_single_coordinator_crash_survivors_always_decide(crash_at, seed):
    """The protocol's whole point: one crash never blocks the rest."""
    system, state = run_with_failure(ProtocolKind.NON_BLOCKING, "a",
                                     crash_at, False, seed)
    decided = decided_outcomes(system, state)
    assert "b" in decided and "c" in decided
    assert decided["b"] == decided["c"]
    # And locks are gone at the survivors.
    for s in ("b", "c"):
        assert system.server(f"server0@{s}").locks.locked_objects() == []


@SLOW
@given(crash_at=st.floats(min_value=100.0, max_value=200.0),
       seed=st.integers(min_value=0, max_value=10_000))
def test_committed_outcome_matches_values_on_disk(crash_at, seed):
    """If any site decided COMMITTED, every live update site eventually
    shows the committed value; if ABORTED, none does."""
    system, state = run_with_failure(ProtocolKind.NON_BLOCKING, "a",
                                     crash_at, True, seed)
    system.run_for(20_000.0)
    decided = decided_outcomes(system, state)
    if not decided:
        return
    outcome = next(iter(decided.values()))
    for s in ("b", "c"):
        value = system.server(f"server0@{s}").peek("x")
        if outcome is Outcome.COMMITTED:
            assert value == 1
        else:
            assert value is None


@SLOW
@given(seed=st.integers(min_value=0, max_value=10_000),
       partition_at=st.floats(min_value=100.0, max_value=250.0))
def test_nb_partition_never_splits_brain(seed, partition_at):
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1, "c": 1},
                                        seed=seed))
    app = system.application("a")
    state = {}

    def workload():
        tid = yield from app.begin(protocol=ProtocolKind.NON_BLOCKING)
        state["tid"] = str(tid)
        for s in system.default_services():
            yield from app.write(tid, s, "x", 1)
        try:
            yield from app.commit(tid, protocol=ProtocolKind.NON_BLOCKING)
        except BaseException:
            pass

    system.failures.partition_at(partition_at, [["a"], ["b", "c"]])
    system.failures.heal_at(partition_at + 12_000.0)
    system.spawn(workload(), name="txn")
    system.run_for(60_000.0)
    outcomes = set(decided_outcomes(system, state).values())
    assert len(outcomes) <= 1


@SLOW
@given(seed=st.integers(min_value=0, max_value=10_000),
       loss=st.floats(min_value=0.0, max_value=0.25))
def test_message_loss_never_breaks_atomicity(seed, loss):
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}, seed=seed))
    system.lan.loss_probability = loss
    app = system.application("a")
    state = {}

    def workload():
        try:
            tid = yield from app.begin()
            state["tid"] = str(tid)
            yield from app.write(tid, "server0@a", "x", 1, timeout=8_000.0)
            yield from app.write(tid, "server0@b", "x", 1, timeout=8_000.0)
            yield from app.commit(tid)
        except BaseException:
            pass

    system.spawn(workload(), name="txn")
    system.run_for(60_000.0)
    outcomes = set(decided_outcomes(system, state).values())
    assert len(outcomes) <= 1


@SLOW
@given(seed=st.integers(min_value=0, max_value=10_000),
       crash_at=st.floats(min_value=10.0, max_value=300.0))
def test_log_never_contains_conflicting_outcomes(seed, crash_at):
    """No site's durable log ever holds both a commit and an abort
    record for one transaction."""
    system, state = run_with_failure(ProtocolKind.NON_BLOCKING, "b",
                                     crash_at, True, seed)
    system.run_for(10_000.0)
    for site in system.site_names():
        by_tid = {}
        for rec in system.stores.for_site(site).records():
            kinds = by_tid.setdefault(rec.tid, set())
            kinds.add(rec.kind)
        for tid, kinds in by_tid.items():
            has_commit = kinds & {RecordKind.COMMIT, RecordKind.COORD_COMMIT}
            has_abort = RecordKind.ABORT in kinds
            assert not (has_commit and has_abort), \
                f"{site}: {tid} has both commit and abort records"
