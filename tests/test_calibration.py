"""Calibration pins: the headline paper numbers, as fast regression
guards.

The benchmarks assert these thoroughly with larger trial counts; these
smaller copies run with the unit suite so a calibration-breaking change
fails in seconds, not only when the benchmark suite runs.
"""

import pytest

from repro.bench.experiment import measure_latency
from repro.core.outcomes import ProtocolKind


@pytest.fixture(scope="module")
def anchors():
    """One shared measurement pass for all pins (trials kept small)."""
    return {
        "local_update": measure_latency(0, trials=8),
        "one_sub_update": measure_latency(1, trials=8),
        "local_read": measure_latency(0, op="read", trials=8),
        "one_sub_nb": measure_latency(1, protocol=ProtocolKind.NON_BLOCKING,
                                      trials=8),
    }


def test_local_update_near_paper_31ms(anchors):
    assert 23.0 <= anchors["local_update"].summary.mean <= 40.0


def test_one_sub_update_near_paper_110ms(anchors):
    assert 90.0 <= anchors["one_sub_update"].summary.mean <= 135.0


def test_local_read_near_paper_13ms(anchors):
    assert 8.0 <= anchors["local_read"].summary.mean <= 17.0


def test_nb_premium_under_two(anchors):
    ratio = (anchors["one_sub_nb"].summary.mean
             / anchors["one_sub_update"].summary.mean)
    assert 1.15 <= ratio <= 2.0


def test_force_and_datagram_counts(anchors):
    assert anchors["one_sub_update"].forces_per_txn == 2.0
    assert anchors["one_sub_update"].datagrams_per_txn == 3.0
    assert anchors["one_sub_nb"].forces_per_txn == 4.0
    assert anchors["local_read"].forces_per_txn == 0.0


def test_read_write_gap(anchors):
    assert (anchors["local_read"].summary.mean
            < anchors["local_update"].summary.mean - 10.0)
