"""Protocol fuzzing: random delivery orders, duplication, and loss
against linked sans-IO machines.

A miniature network of MachineHosts is wired together; every outbound
message goes into a bag, and a seeded scheduler repeatedly pulls a
random message (sometimes duplicating it, sometimes dropping it) and
delivers it, interleaving log-force completions and timer firings at
random.  Invariants checked on every schedule:

- no machine ever raises a protocol violation;
- every decided machine agrees on the outcome;
- a site that decided COMMITTED holds (or held) the records commit
  requires.

This exercises the idempotency/duplicate/stale-message paths far more
densely than the integration suite can.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.nonblocking import NbCoordinator, NbSubordinate
from repro.core.outcomes import Outcome, Vote
from repro.core.quorum import QuorumSpec
from repro.core.tid import TID
from repro.core.twophase import TwoPhaseCoordinator, TwoPhaseSubordinate

from tests.machine_harness import MachineHost

TID1 = TID("T1@c0")

FUZZ = settings(max_examples=40, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


class FuzzNet:
    """Links MachineHosts by site name and schedules chaos."""

    def __init__(self, rng: random.Random, dup_rate: float,
                 loss_rate: float, interceptor=None):
        self.rng = rng
        self.dup_rate = dup_rate
        self.loss_rate = loss_rate
        # Emulates the TranMan's stateless protocol edge (e.g. building
        # a quorum-helper machine for a forgotten read-only site);
        # returns True when it fully handled the delivery.
        self.interceptor = interceptor
        self.hosts = {}
        self._consumed = {}  # host -> how many sent messages processed

    def add(self, site: str, host: MachineHost) -> None:
        self.hosts[site] = host
        self._consumed[site] = 0

    def _collect(self):
        """Sweep every host's fresh outbound messages into the bag."""
        bag = []
        for site, host in self.hosts.items():
            fresh = host.sent[self._consumed[site]:]
            self._consumed[site] = len(host.sent)
            for dst, msg in fresh:
                if self.rng.random() < self.loss_rate:
                    continue
                bag.append((dst, msg))
                if self.rng.random() < self.dup_rate:
                    bag.append((dst, msg))
            # Lazy sends flush too (as the piggyback sweep would).
            for dst, msg in host.lazy_sent:
                bag.append((dst, msg))
            host.lazy_sent.clear()
        return bag

    def run(self, max_steps: int = 3000) -> None:
        bag = []
        for _ in range(max_steps):
            bag.extend(self._collect())
            actions = []
            if bag:
                actions.append("deliver")
            for site, host in self.hosts.items():
                if host.pending_forces:
                    actions.append(("force", site))
                if host.pending_durable:
                    actions.append(("durable", site))
                if host.timers:
                    actions.append(("timer", site))
            if not actions:
                bag.extend(self._collect())
                if not bag:
                    return
                actions.append("deliver")
            action = self.rng.choice(actions)
            if action == "deliver":
                dst, msg = bag.pop(self.rng.randrange(len(bag)))
                host = self.hosts.get(dst)
                if host is not None:
                    if (self.interceptor is not None
                            and self.interceptor(host, msg)):
                        continue
                    host.deliver(msg)
            elif action[0] == "force":
                self.hosts[action[1]].complete_force()
            elif action[0] == "durable":
                self.hosts[action[1]].complete_durable()
            else:
                host = self.hosts[action[1]]
                token = self.rng.choice(sorted(host.timers))
                host.fire_timer(token)


def outcomes_of(net: FuzzNet):
    return {site: host.machine.outcome
            for site, host in net.hosts.items()
            if getattr(host.machine, "outcome", None) is not None}


@FUZZ
@given(seed=st.integers(min_value=0, max_value=100_000),
       n_subs=st.integers(min_value=1, max_value=4),
       votes=st.lists(st.sampled_from([Vote.YES, Vote.NO, Vote.READ_ONLY]),
                      min_size=4, max_size=4),
       dup=st.floats(min_value=0.0, max_value=0.4))
def test_2pc_fuzz_agreement(seed, n_subs, votes, dup):
    rng = random.Random(seed)
    subs = [f"s{i}" for i in range(n_subs)]
    net = FuzzNet(rng, dup_rate=dup, loss_rate=0.0)
    coord = MachineHost(TwoPhaseCoordinator(TID1, "c0", subs))
    net.add("c0", coord)
    for i, site in enumerate(subs):
        net.add(site, MachineHost(TwoPhaseSubordinate(TID1, site, "c0")))
    coord.start()
    coord.local_prepared(Vote.YES)
    for i, site in enumerate(subs):
        net.hosts[site].start()
        net.hosts[site].local_prepared(votes[i])
    net.run()
    decided = outcomes_of(net)
    assert decided.get("c0") is not None, "coordinator must decide"
    agreed = {o for o in decided.values()}
    assert len(agreed) == 1, f"split outcomes: {decided}"
    if any(votes[i] is Vote.NO for i in range(n_subs)):
        assert decided["c0"] is Outcome.ABORTED


@FUZZ
@given(seed=st.integers(min_value=0, max_value=100_000),
       n_subs=st.integers(min_value=1, max_value=4),
       votes=st.lists(st.sampled_from([Vote.YES, Vote.NO, Vote.READ_ONLY]),
                      min_size=4, max_size=4),
       dup=st.floats(min_value=0.0, max_value=0.4))
def test_nb_fuzz_agreement(seed, n_subs, votes, dup):
    rng = random.Random(seed)
    subs = [f"s{i}" for i in range(n_subs)]
    sites = ["c0"] + subs
    quorum = QuorumSpec.majority(len(sites))

    def stateless_edge(host, msg):
        """TranMan's stateless layer: a read-only site that forgot the
        transaction is rebuilt as a quorum helper on NbReplicate."""
        from repro.core.messages import NbReplicate
        from repro.core.nonblocking import NbSubState

        machine = host.machine
        if (isinstance(msg, NbReplicate)
                and isinstance(machine, NbSubordinate)
                and machine.state is NbSubState.DONE
                and machine.outcome is None):
            host.machine = NbSubordinate.helper(msg.tid, machine.site, msg)
            host.deliver(msg)
            return True
        return False

    net = FuzzNet(rng, dup_rate=dup, loss_rate=0.0,
                  interceptor=stateless_edge)
    coord = MachineHost(NbCoordinator(TID1, "c0", subs, quorum=quorum))
    net.add("c0", coord)
    for i, site in enumerate(subs):
        net.add(site, MachineHost(NbSubordinate(TID1, site, "c0",
                                                sites, quorum)))
    coord.start()
    coord.local_prepared(Vote.YES)
    for i, site in enumerate(subs):
        net.hosts[site].start()
        net.hosts[site].local_prepared(votes[i])
    net.run()
    decided = outcomes_of(net)
    assert decided.get("c0") is not None
    assert len(set(decided.values())) == 1, f"split outcomes: {decided}"
    if decided["c0"] is Outcome.COMMITTED:
        # Commit implies a commit quorum's worth of replication records.
        replicated = sum(
            1 for host in net.hosts.values()
            if any(r.kind.value == "replication" for r in host.forced))
        assert replicated >= quorum.commit_quorum


@FUZZ
@given(seed=st.integers(min_value=0, max_value=100_000),
       loss=st.floats(min_value=0.0, max_value=0.3))
def test_2pc_fuzz_with_loss_never_splits(seed, loss):
    """With loss, progress is not guaranteed inside the step budget —
    but agreement among whoever decided still is."""
    rng = random.Random(seed)
    net = FuzzNet(rng, dup_rate=0.1, loss_rate=loss)
    coord = MachineHost(TwoPhaseCoordinator(TID1, "c0", ["s0", "s1"]))
    net.add("c0", coord)
    for site in ("s0", "s1"):
        net.add(site, MachineHost(TwoPhaseSubordinate(TID1, site, "c0")))
    coord.start()
    coord.local_prepared(Vote.YES)
    for site in ("s0", "s1"):
        net.hosts[site].start()
        net.hosts[site].local_prepared(Vote.YES)
    net.run(max_steps=1500)
    decided = outcomes_of(net)
    assert len(set(decided.values())) <= 1
