"""Integration: local transactions through the whole stack."""

import pytest

from repro import CamelotSystem, Outcome, SystemConfig, TID
from repro.servers.application import TransactionAborted


@pytest.fixture
def system():
    return CamelotSystem(SystemConfig(sites={"a": 2}))


def run(system, body, timeout=60_000.0):
    return system.run_process(body, timeout_ms=timeout)


def test_local_update_commits_and_applies(system):
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "x", 41)
        yield from app.write(tid, "server0@a", "x", 42)
        outcome = yield from app.commit(tid)
        return outcome

    assert run(system, workload()) is Outcome.COMMITTED
    assert system.server("server0@a").peek("x") == 42


def test_local_update_single_log_force(system):
    """'In the best (and typical) case, only one log write is needed to
    commit the transaction.'"""
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "x", 1)
        yield from app.commit(tid)

    before = system.tracer.snapshot()
    run(system, workload())
    delta = system.tracer.delta(before, system.tracer.snapshot())
    assert delta.get("diskman.force", 0) == 1


def test_local_read_no_log_writes(system):
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        value = yield from app.read(tid, "server0@a", "missing")
        outcome = yield from app.commit(tid)
        return (value, outcome)

    value, outcome = run(system, workload())
    assert value is None and outcome is Outcome.COMMITTED
    rt = system.runtime("a")
    assert rt.diskman.wal.appends == 0


def test_abort_undoes_updates(system):
    app = system.application("a")

    def workload():
        seed = yield from app.begin()
        yield from app.write(seed, "server0@a", "x", 10)
        yield from app.commit(seed)
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "x", 99)
        yield from app.abort(tid)

    run(system, workload())
    system.run_for(2_000.0)  # let the one-way undo land
    assert system.server("server0@a").peek("x") == 10


def test_aborted_transaction_releases_locks(system):
    app = system.application("a")

    def workload():
        t1 = yield from app.begin()
        yield from app.write(t1, "server0@a", "x", 1)
        yield from app.abort(t1)
        # If locks leaked, this write would hang.
        t2 = yield from app.begin()
        yield from app.write(t2, "server0@a", "x", 2)
        outcome = yield from app.commit(t2)
        return outcome

    assert run(system, workload()) is Outcome.COMMITTED


def test_two_servers_one_site_one_force(system):
    """Multiple servers at one site share the commit record."""
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "x", 1)
        yield from app.write(tid, "server1@a", "y", 2)
        outcome = yield from app.commit(tid)
        return outcome

    before = system.tracer.snapshot()
    assert run(system, workload()) is Outcome.COMMITTED
    delta = system.tracer.delta(before, system.tracer.snapshot())
    assert delta.get("diskman.force", 0) == 1
    assert system.server("server1@a").peek("y") == 2


def test_commit_of_unknown_transaction_fails(system):
    app = system.application("a")

    def workload():
        with pytest.raises(TransactionAborted):
            yield from app.commit(TID("T99@a"))
        return "checked"

    assert run(system, workload()) == "checked"


def test_server_refusal_aborts_transaction(system):
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "x", 5)
        system.server("server0@a").refuse_next_prepare.add(tid)
        outcome = yield from app.commit(tid)
        return outcome

    assert run(system, workload()) is Outcome.ABORTED
    system.run_for(1_000.0)
    assert system.server("server0@a").peek("x") is None


def test_serial_transactions_isolated(system):
    app = system.application("a")

    def workload():
        for i in range(5):
            tid = yield from app.begin()
            current = yield from app.read(tid, "server0@a", "counter")
            yield from app.write(tid, "server0@a", "counter",
                                 (current or 0) + 1)
            yield from app.commit(tid)

    run(system, workload())
    assert system.server("server0@a").peek("counter") == 5


def test_concurrent_apps_with_lock_conflict(system):
    """Two write-write conflicting transactions serialize on the lock:
    the second waits for the first's locks to drop, then commits."""
    apps = [system.application("a", name=f"app{i}") for i in range(2)]
    results = []

    def workload(app, value):
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "slot", value)
        outcome = yield from app.commit(tid)
        results.append((value, outcome))

    system.spawn(workload(apps[0], 1))
    system.spawn(workload(apps[1], 2))
    system.run_for(10_000.0)
    assert [o for _, o in results] == [Outcome.COMMITTED, Outcome.COMMITTED]
    # One of them waited for the other's lock.
    assert system.tracer.count("server.lock_wait") >= 1
    # Serialized: the final value is the later committer's.
    assert system.server("server0@a").peek("slot") in (1, 2)


def test_stats_track_commits_and_aborts(system):
    app = system.application("a")

    def workload():
        t1 = yield from app.begin()
        yield from app.write(t1, "server0@a", "x", 1)
        yield from app.commit(t1)
        t2 = yield from app.begin()
        yield from app.write(t2, "server0@a", "x", 2)
        yield from app.abort(t2)

    run(system, workload())
    stats = system.tranman("a").stats
    assert stats["begun"] == 2
    assert stats["committed"] == 1
    assert stats["aborted"] == 1
