"""Unit tests for family/transaction descriptors."""

import pytest

from repro.core.family import FamilyTable
from repro.core.outcomes import Outcome
from repro.core.tid import TID


def test_begin_creates_family_and_descriptor():
    table = FamilyTable()
    tid = TID("T1@a")
    desc = table.begin(tid)
    assert desc.tid == tid
    assert desc.active
    assert "T1@a" in table
    assert table.descriptor(tid) is desc


def test_duplicate_begin_rejected():
    table = FamilyTable()
    table.begin(TID("T1@a"))
    with pytest.raises(ValueError):
        table.begin(TID("T1@a"))


def test_nested_begin_links_children():
    table = FamilyTable()
    root = TID("T1@a")
    table.begin(root)
    child = root.child(1)
    table.begin(child)
    assert table.descriptor(root).children == [child]


def test_note_server_joined_reports_first_join():
    table = FamilyTable()
    desc = table.begin(TID("T1@a"))
    assert desc.note_server_joined("s1")
    assert not desc.note_server_joined("s1")
    assert desc.joined_servers == {"s1"}


def test_family_aggregates_sites_and_servers():
    table = FamilyTable()
    root = TID("T1@a")
    table.begin(root)
    child = root.child(1)
    child_desc = table.begin(child)
    table.descriptor(root).note_sites(["b"])
    child_desc.note_sites(["c"])
    child_desc.note_server_joined("srv")
    fam = table.family_of(root)
    assert fam.all_sites() == {"b", "c"}
    assert fam.all_servers() == {"srv"}


def test_descendants_of():
    table = FamilyTable()
    root = TID("T1@a")
    table.begin(root)
    c1 = root.child(1)
    table.begin(c1)
    table.begin(c1.child(1))
    table.begin(root.child(2))
    descendants = table.family_of(root).descendants_of(c1)
    assert [str(d.tid) for d in descendants] == ["T1@a:1.1"]


def test_forget_transaction_reaps_empty_family():
    table = FamilyTable()
    tid = TID("T1@a")
    table.begin(tid)
    table.forget_transaction(tid)
    assert "T1@a" not in table
    assert len(table) == 0


def test_forget_family_removes_all_members():
    table = FamilyTable()
    root = TID("T1@a")
    table.begin(root)
    table.begin(root.child(1))
    table.forget_family("T1@a")
    assert table.descriptor(root) is None


def test_outcome_marks_inactive():
    table = FamilyTable()
    desc = table.begin(TID("T1@a"))
    desc.outcome = Outcome.COMMITTED
    assert not desc.active


def test_active_families_sorted():
    table = FamilyTable()
    table.begin(TID("T2@a"))
    table.begin(TID("T1@a"))
    assert table.active_families() == ["T1@a", "T2@a"]
