"""Unit tests for the failure injector and site crash semantics."""

import pytest

from repro import CamelotSystem, SystemConfig
from repro.sim.process import Sleep


@pytest.fixture
def system():
    return CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))


def test_crash_kills_site_processes(system):
    site = system.runtime("a").site
    assert site.alive and site.processes
    system.failures.crash(site.name)
    assert not site.alive
    assert site.processes == []


def test_crash_is_idempotent(system):
    system.failures.crash("a")
    system.runtime("a").site.crash()  # second crash: no-op
    assert system.runtime("a").site.crash_count == 1


def test_scheduled_crash_and_restart(system):
    system.failures.crash_at(100.0, "a")
    system.failures.restart_at(200.0, "a")
    system.run_for(150.0)
    assert not system.runtime("a").site.alive
    system.run_for(100.0)
    assert system.runtime("a").site.alive


def test_cannot_schedule_in_the_past(system):
    system.run_for(100.0)
    with pytest.raises(ValueError):
        system.failures.crash_at(50.0, "a")


def test_unknown_site_rejected(system):
    with pytest.raises(KeyError):
        system.failures.crash("nope")


def test_partition_and_heal_scheduling(system):
    system.failures.partition_at(10.0, [["a"], ["b"]])
    system.failures.heal_at(20.0)
    system.run_for(15.0)
    assert not system.lan.reachable("a", "b")
    system.run_for(10.0)
    assert system.lan.reachable("a", "b")


def test_loss_probability_setting(system):
    system.failures.set_loss(0.3)
    assert system.lan.loss_probability == 0.3
    with pytest.raises(ValueError):
        system.failures.set_loss(1.5)


def test_failure_log_records_actions(system):
    system.failures.crash("a")
    system.failures.heal()   # nothing partitioned: validated no-op
    kinds = [kind for _, kind, __ in system.failures.log]
    assert kinds == ["crash", "heal_noop"]


def test_crash_of_dead_site_is_noop(system):
    system.failures.crash("a")
    system.failures.crash("a")
    kinds = [kind for _, kind, __ in system.failures.log]
    assert kinds == ["crash", "crash_noop"]
    assert system.runtime("a").site.crash_count == 1
    assert system.tracer.counters.get("fail.crash_noop") == 1


def test_restart_of_live_site_is_noop(system):
    old_port = system.runtime("a").tranman.port
    system.failures.restart("a")
    kinds = [kind for _, kind, __ in system.failures.log]
    assert kinds == ["restart_noop"]
    # A live site's ports must be untouched by the no-op.
    assert system.runtime("a").tranman.port is old_port


def test_heal_noop_real_noop_sequence(system):
    system.failures.heal()
    system.failures.partition([["a"], ["b"]])
    system.failures.heal()
    system.failures.heal()
    kinds = [kind for _, kind, __ in system.failures.log]
    assert kinds == ["heal_noop", "partition", "heal", "heal_noop"]
    assert system.lan.reachable("a", "b")


def test_set_loss_is_traced(system):
    system.failures.set_loss(0.25)
    assert system.tracer.counters.get("fail.loss") == 1
    assert system.failures.log[-1][1:] == ("loss", 0.25)


def test_restart_of_unknown_site_rejected(system):
    with pytest.raises(KeyError):
        system.failures.restart("nope")


def test_dead_site_cannot_spawn(system):
    site = system.runtime("a").site
    site.crash()

    def body():
        yield Sleep(1.0)
        return "ran"

    proc = site.spawn(body(), "zombie")
    system.run_for(10.0)
    assert not proc.alive
    assert proc.done.value is None


def test_self_crash_from_within_process(system):
    """A process that crashes its own site dies cleanly (no throw into a
    running generator)."""
    site = system.runtime("a").site
    progress = []

    def suicidal():
        progress.append("before")
        site.crash()
        progress.append("after-crash-call")
        yield Sleep(10.0)
        progress.append("never")

    site.spawn(suicidal(), "suicidal")
    system.run_for(100.0)
    assert progress == ["before", "after-crash-call"]
    assert not site.alive


def test_restart_runs_recovery_and_new_ports(system):
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "x", 1)
        yield from app.commit(tid)

    system.run_process(workload())
    old_port = system.runtime("a").tranman.port
    system.crash_site("a")
    runtime = system.restart_site("a")
    assert runtime.tranman.port is not old_port
    assert old_port.dead
    system.run_for(1_000.0)
    assert system.server("server0@a").peek("x") == 1
