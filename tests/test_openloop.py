"""Open-loop workload generator: distribution correctness, sketch
accuracy, seed determinism, and streaming boundedness (ISSUE 6)."""

import random

import pytest

from repro.bench.openloop import (
    LatencySketch,
    ZipfSampler,
    run_open_loop,
    scale_curve,
)


# ------------------------------------------------------------- sampler


def test_zipf_sampler_matches_analytic_pmf():
    """Empirical rank frequencies track the analytic Zipf pmf."""
    sampler = ZipfSampler(16, s=1.1)
    rng = random.Random(42)
    n = 40_000
    counts = [0] * 16
    for _ in range(n):
        counts[sampler.sample(rng)] += 1
    for k in range(16):
        expected = sampler.pmf(k) * n
        # 5-sigma binomial tolerance, floor of 25 for the rare tail.
        sigma = max(25.0, 5.0 * (expected * (1 - sampler.pmf(k))) ** 0.5)
        assert abs(counts[k] - expected) < sigma, (
            f"rank {k}: observed {counts[k]}, expected {expected:.0f}")


def test_zipf_sampler_is_skewed_and_normalized():
    sampler = ZipfSampler(64, s=1.1)
    pmf = [sampler.pmf(k) for k in range(64)]
    assert abs(sum(pmf) - 1.0) < 1e-9
    assert pmf[0] > 5 * pmf[15] > 0  # head dominates the tail
    assert pmf == sorted(pmf, reverse=True)


def test_zipf_sampler_deterministic_given_rng():
    sampler = ZipfSampler(32, s=1.2)
    a = [sampler.sample(random.Random(7)) for _ in range(50)]
    b = [sampler.sample(random.Random(7)) for _ in range(50)]
    assert a == b


def test_zipf_sampler_rejects_empty():
    with pytest.raises(ValueError):
        ZipfSampler(0)


def test_poisson_interarrival_mean():
    """The driver draws expovariate(rate) gaps; their mean is 1/rate."""
    rng = random.Random(0)
    rate_per_ms = 0.3  # 300 tps
    n = 20_000
    gaps = [rng.expovariate(rate_per_ms) for _ in range(n)]
    mean = sum(gaps) / n
    # Standard error of an exponential mean is mean/sqrt(n): ~2%.
    assert abs(mean - 1.0 / rate_per_ms) < 0.1 / rate_per_ms


# -------------------------------------------------------------- sketch


def test_latency_sketch_quantiles_within_relative_error():
    sketch = LatencySketch()
    rng = random.Random(1)
    samples = [rng.lognormvariate(3.0, 1.0) for _ in range(10_000)]
    for ms in samples:
        sketch.add(ms)
    samples.sort()
    for q in (0.50, 0.95, 0.99):
        exact = samples[int(q * len(samples)) - 1]
        approx = sketch.quantile(q)
        # Bucket width is 2**(1/4): ~19% worst-case band, generous here.
        assert approx == pytest.approx(exact, rel=0.25), f"q={q}"


def test_latency_sketch_exact_mean_min_max():
    sketch = LatencySketch()
    for ms in (1.0, 2.0, 4.0, 9.0):
        sketch.add(ms)
    assert sketch.count == 4
    assert sketch.mean == pytest.approx(4.0)
    assert sketch.min == 1.0
    assert sketch.max == 9.0
    # Quantiles are clamped into [min, max].
    assert sketch.min <= sketch.quantile(0.01) <= sketch.max
    assert sketch.min <= sketch.quantile(0.999) <= sketch.max


def test_latency_sketch_fixed_size():
    sketch = LatencySketch()
    for i in range(50_000):
        sketch.add(0.1 + (i % 1000) * 3.7)
    assert len(sketch.counts) == LatencySketch.BUCKETS
    assert sketch.count == 50_000


# ------------------------------------------------------------ open loop


def _small_run(**kw):
    defaults = dict(sites=4, rate_tps=120.0, txns=150, seed=3)
    defaults.update(kw)
    return run_open_loop(**defaults)


def test_open_loop_smoke_all_transactions_resolve():
    result = _small_run()
    assert result.committed + result.aborted == result.txns
    assert result.unfinished == 0
    assert result.measured_tps > 0
    assert result.peak_in_flight >= 1
    assert 0.0 < result.p50_ms <= result.p99_ms <= result.max_ms


def test_open_loop_seed_deterministic():
    a = _small_run()
    b = _small_run()
    assert (a.committed, a.aborted, a.measured_tps, a.mean_ms,
            a.peak_in_flight) == \
        (b.committed, b.aborted, b.measured_tps, b.mean_ms,
         b.peak_in_flight)
    assert a.counters == b.counters


def test_open_loop_seeds_differ():
    a = _small_run(seed=3)
    b = _small_run(seed=4)
    assert a.mean_ms != b.mean_ms


def test_open_loop_attribution_is_populated():
    result = _small_run()
    classes = {row.cls for row in result.attribution}
    # Every committed transaction does local IPC and forces the log.
    assert "ipc" in classes
    assert "log_force" in classes
    for row in result.attribution:
        assert row.per_txn > 0
    est = {row.cls: row.est_ms for row in result.attribution}
    assert est["log_force"] > 0  # unit-cost classes carry an estimate
    # CPU has no single unit cost: counted, never priced.
    if "cpu" in est:
        assert est["cpu"] == 0.0


def test_scale_curve_shape_and_load_scaling():
    results = scale_curve(site_counts=(2, 4), per_site_tps=15.0, txns=80,
                          seed=1)
    assert [r.sites for r in results] == [2, 4]
    assert results[0].offered_tps == pytest.approx(30.0)
    assert results[1].offered_tps == pytest.approx(60.0)
    for r in results:
        assert r.unfinished == 0
