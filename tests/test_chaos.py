"""Chaos framework: schedules, oracles, shrinking, replay, and the
kill-safety regressions the framework's first sweeps uncovered."""

import json

import pytest

from repro.chaos.boundaries import golden_boundaries, systematic_schedules
from repro.chaos.bugs import BUGS, seeded_bug
from repro.chaos.oracles import Violation
from repro.chaos.scenario import ScenarioSpec, run_schedule
from repro.chaos.schedule import (
    FaultEvent,
    FaultSchedule,
    random_schedule,
    random_schedules,
)
from repro.chaos.shrinker import replay, shrink_schedule, write_repro
from repro.chaos.__main__ import main as chaos_main
from repro.sim.kernel import Kernel
from repro.sim.process import spawn
from repro.sim.resources import Semaphore


# ------------------------------------------------------------ schedules


def test_fault_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(1.0, "meteor")
    with pytest.raises(ValueError):
        FaultEvent(1.0, "crash")               # crash needs a site
    with pytest.raises(ValueError):
        FaultEvent(1.0, "partition")           # partition needs groups
    with pytest.raises(ValueError):
        FaultEvent(1.0, "loss")                # loss needs a probability


def test_random_schedule_is_seed_deterministic():
    a = random_schedule(("a", "b", "c"), seed=42)
    b = random_schedule(("a", "b", "c"), seed=42)
    assert a.events == b.events
    assert random_schedule(("a", "b", "c"), seed=43).events != a.events


def test_random_schedules_are_prefix_stable():
    few = random_schedules(("a", "b"), 7, 5)
    many = random_schedules(("a", "b"), 7, 10)
    assert [s.events for s in few] == [s.events for s in many[:5]]


def test_schedule_json_round_trip():
    sched = random_schedule(("a", "b", "c"), seed=3, label="rt")
    blob = json.dumps(sched.to_json(), sort_keys=True)
    back = FaultSchedule.from_json(json.loads(blob))
    assert back == sched
    assert json.dumps(back.to_json(), sort_keys=True) == blob


def test_schedule_orders_events_by_time():
    sched = FaultSchedule(events=(
        FaultEvent(200.0, "heal"),
        FaultEvent(100.0, "crash", site="a"),
    ))
    assert [e.time for e in sched.events] == [100.0, 200.0]
    assert sched.horizon() == 200.0


# ------------------------------------------------------------- scenario


def test_fault_free_run_is_clean_and_deterministic():
    spec = ScenarioSpec(protocol="2pc")
    empty = FaultSchedule(label="fault-free")
    first = run_schedule(spec, empty)
    second = run_schedule(spec, empty)
    assert first.ok and second.ok
    assert first.signature == second.signature
    assert set(first.tombstones.values()) == {"committed"}


def test_nb_fault_free_run_is_clean():
    result = run_schedule(ScenarioSpec(protocol="nb"),
                          FaultSchedule(label="fault-free"))
    assert result.ok
    assert set(result.tombstones.values()) == {"committed"}


def test_single_crash_with_restart_resolves():
    spec = ScenarioSpec(protocol="2pc")
    sched = FaultSchedule(events=(
        FaultEvent(138.0, "crash", site="a"),
        FaultEvent(5_000.0, "restart", site="a"),
    ), label="coord-crash")
    result = run_schedule(spec, sched)
    assert result.ok, [v.describe() for v in result.violations]


def test_in_sim_exception_becomes_crash_violation(monkeypatch):
    """A protocol assertion tripping mid-run must surface as a 'crash'
    violation, not abort the exploration loop."""
    from repro.core import twophase

    def boom(self, *a, **k):
        raise RuntimeError("seeded explosion")
    monkeypatch.setattr(twophase.TwoPhaseCoordinator,
                        "on_local_prepared", boom)
    result = run_schedule(ScenarioSpec(protocol="2pc"), FaultSchedule())
    assert not result.ok
    assert [v.oracle for v in result.violations] == ["crash"]
    assert "seeded explosion" in result.violations[0].message


# ----------------------------------------------------------- boundaries


def test_golden_boundaries_cover_protocol_window():
    spec = ScenarioSpec(protocol="2pc")
    times = golden_boundaries(spec)
    assert times == sorted(set(times))
    assert len(times) >= 5
    # The commit protocol's message activity lives well inside 1s.
    assert all(0.0 < t < 1_000.0 for t in times)


def test_systematic_schedules_pair_crash_with_restart():
    spec = ScenarioSpec(protocol="2pc")
    scheds = systematic_schedules(spec, max_boundaries=2)
    assert scheds
    for sched in scheds:
        kinds = [e.kind for e in sched.events]
        assert kinds == ["crash", "restart"]
        assert sched.events[0].site == sched.events[1].site


# ------------------------------------------- seeded bug, shrink, replay


def test_seeded_bug_registry():
    assert "vote_before_prepare_durable" in BUGS
    with pytest.raises(KeyError):
        with seeded_bug("no_such_bug"):
            pass
    with seeded_bug(None):       # passthrough
        pass


def test_seeded_bug_is_caught_shrunk_and_replayable(tmp_path):
    """The acceptance loop end-to-end: a deliberately broken subordinate
    (YES vote before the prepare record is durable) must be caught by an
    oracle, shrink to a minimal crash/restart pair, and replay
    byte-identically from the written repro."""
    spec = ScenarioSpec(protocol="2pc", bug="vote_before_prepare_durable")
    sched = FaultSchedule(events=(
        FaultEvent(90.0, "heal"),                 # decoy no-op
        FaultEvent(121.0, "crash", site="b"),
        FaultEvent(300.0, "loss", probability=0.0),   # decoy no-op
        FaultEvent(5_121.0, "restart", site="b"),
    ), label="seeded")
    result = run_schedule(spec, sched)
    assert not result.ok
    assert "durability" in {v.oracle for v in result.violations}

    minimal_sched, minimal = shrink_schedule(spec, result)
    assert len(minimal_sched) <= 3
    kinds = {e.kind for e in minimal_sched.events}
    assert "crash" in kinds

    path = tmp_path / "repro.json"
    write_repro(str(path), minimal)
    reproduced, fresh, expected = replay(str(path))
    assert reproduced
    assert fresh.signature == expected


def test_without_bug_same_schedule_is_clean():
    spec = ScenarioSpec(protocol="2pc")
    sched = FaultSchedule(events=(
        FaultEvent(121.0, "crash", site="b"),
        FaultEvent(5_121.0, "restart", site="b"),
    ), label="clean")
    result = run_schedule(spec, sched)
    assert result.ok, [v.describe() for v in result.violations]


def test_shrink_requires_a_failing_result():
    spec = ScenarioSpec(protocol="2pc")
    clean = run_schedule(spec, FaultSchedule())
    with pytest.raises(ValueError):
        shrink_schedule(spec, clean)


# ------------------------------------------------------------------ CLI


def test_cli_small_clean_sweep_exits_zero(capsys):
    rc = chaos_main(["--protocol", "2pc", "--schedules", "3",
                     "--mode", "random", "--seed", "11"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "no invariant violations" in out


def test_cli_seeded_bug_writes_repro_and_replays(tmp_path, capsys):
    out_dir = tmp_path / "repros"
    rc = chaos_main(["--protocol", "2pc", "--schedules", "3", "--seed", "7",
                     "--mode", "random",
                     "--bug", "vote_before_prepare_durable",
                     "--out", str(out_dir)])
    capsys.readouterr()
    assert rc == 1
    repros = sorted(out_dir.glob("repro-*.json"))
    assert repros
    rc = chaos_main(["--replay", str(repros[0])])
    out = capsys.readouterr().out
    assert rc == 0
    assert "reproduced" in out


def test_cli_replay_divergence_detected(tmp_path, capsys):
    out_dir = tmp_path / "repros"
    chaos_main(["--protocol", "2pc", "--schedules", "3", "--seed", "7",
                "--mode", "random",
                "--bug", "vote_before_prepare_durable",
                "--out", str(out_dir)])
    capsys.readouterr()
    path = sorted(out_dir.glob("repro-*.json"))[0]
    data = json.loads(path.read_text())
    data["signature"] = "0" * 64
    path.write_text(json.dumps(data))
    rc = chaos_main(["--replay", str(path)])
    out = capsys.readouterr().out
    assert rc == 2
    assert "DIVERGED" in out


# ------------------------------------------------- kill-safety regression


def test_semaphore_handoff_to_killed_waiter_is_returned():
    """A waiter killed at the instant the semaphore was handed to it must
    pass the unit on, not leak it (the restarted-site CPU starvation bug
    the first systematic sweep found)."""
    kernel = Kernel()
    sem = Semaphore(kernel, value=1, name="cpu")
    order = []

    def holder():
        yield from sem.down()
        order.append("holder")
        from repro.sim.process import Sleep
        yield Sleep(10.0)
        sem.up()

    def victim():
        yield from sem.down()
        order.append("victim")      # never: killed first
        sem.up()

    def survivor():
        yield from sem.down()
        order.append("survivor")
        sem.up()

    spawn(kernel, holder(), "holder")
    victim_proc = spawn(kernel, victim(), "victim")
    spawn(kernel, survivor(), "survivor")
    # Kill the victim exactly when the unit is released and handed over.
    kernel.schedule(10.0, victim_proc.kill)
    kernel.run()
    assert order == ["holder", "survivor"]
    assert sem.value == 1           # no leaked capacity


def test_nb_pledge_and_replicate_never_share_a_site():
    """Regression for the takeover self-pledge split-brain: a partition
    flap that once let site b ack a replicate while its own takeover
    counted it pledged.  Both quorum sets must stay disjoint."""
    spec = ScenarioSpec(protocol="nb")
    sched = random_schedules(("a", "b", "c"), 7, 31)[30]
    result = run_schedule(spec, sched)
    assert result.ok, [v.describe() for v in result.violations]
    assert len(set(result.tombstones.values())) == 1


def test_violation_json_round_trip():
    v = Violation(oracle="atomicity", message="split", site="b")
    assert Violation.from_json(v.to_json()) == v
