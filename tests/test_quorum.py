"""Unit + property tests for quorum arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.quorum import QuorumSpec


def test_majority_spec_intersects():
    for n in range(1, 12):
        spec = QuorumSpec.majority(n)
        assert spec.commit_quorum + spec.abort_quorum == n + 1


def test_majority_three_sites():
    spec = QuorumSpec.majority(3)
    assert spec.commit_quorum == 2
    assert spec.abort_quorum == 2


def test_commit_weighted():
    spec = QuorumSpec.commit_weighted(4)
    assert spec.commit_quorum == 1
    assert spec.abort_quorum == 4


def test_non_intersecting_quorums_rejected():
    with pytest.raises(ValueError, match="intersect"):
        QuorumSpec(n_sites=4, commit_quorum=2, abort_quorum=2)


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        QuorumSpec(n_sites=3, commit_quorum=4, abort_quorum=3)
    with pytest.raises(ValueError):
        QuorumSpec(n_sites=0, commit_quorum=1, abort_quorum=1)


def test_can_commit_and_abort_thresholds():
    spec = QuorumSpec.majority(5)  # Qc=3, Qa=3
    assert not spec.can_commit(2)
    assert spec.can_commit(3)
    assert not spec.can_abort(2)
    assert spec.can_abort(3)


def test_commit_excluded():
    spec = QuorumSpec.majority(5)  # Qc=3
    assert not spec.commit_excluded(2)   # 3 eligible left: possible
    assert spec.commit_excluded(3)       # only 2 left: impossible


def test_dict_roundtrip():
    spec = QuorumSpec.majority(4)
    assert QuorumSpec.from_dict(spec.to_dict()) == spec


# --------------------------------------------------------- paxos commit


def test_paxos_even_acceptor_set_rejected():
    """N = 2F+1 is a config-time invariant: an even acceptor set has no
    F and its 'majorities' waste a site, so it is rejected outright."""
    for n in (2, 4, 6, 10):
        with pytest.raises(ValueError, match="odd"):
            QuorumSpec.paxos(n)


def test_paxos_f0_is_a_single_acceptor():
    spec = QuorumSpec.paxos(1)
    assert spec.commit_quorum == 1 and spec.abort_quorum == 1


def test_paxos_majority_sizes():
    for f in range(6):
        spec = QuorumSpec.paxos(2 * f + 1)
        assert spec.commit_quorum == f + 1
        assert spec.abort_quorum == f + 1


def test_paxos_quorum_intersection_brute_force():
    """Every pair of phase-1/phase-2 quorums shares an acceptor — the
    property that lets a later candidate adopt a ballot-0 COMMITTED
    vector instead of inventing an abort."""
    from itertools import combinations
    spec = QuorumSpec.paxos(5)
    acceptors = ["a", "b", "c", "d", "e"]
    for q1 in combinations(acceptors, spec.commit_quorum):
        for q2 in combinations(acceptors, spec.commit_quorum):
            assert set(q1) & set(q2)


@given(st.integers(min_value=0, max_value=25))
def test_paxos_quorums_always_intersect_property(f):
    spec = QuorumSpec.paxos(2 * f + 1)
    # Two disjoint quorums would need 2(F+1) > 2F+1 acceptors.
    assert 2 * spec.commit_quorum > spec.n_sites


@given(st.integers(min_value=1, max_value=50))
def test_majority_always_valid_property(n):
    spec = QuorumSpec.majority(n)
    assert spec.commit_quorum + spec.abort_quorum > n


@given(st.integers(min_value=1, max_value=30), st.data())
def test_no_split_brain_property(n, data):
    """For any valid spec and any disjoint membership assignment, commit
    and abort quorums can never both be satisfied — the safety core of
    the non-blocking protocol."""
    qc = data.draw(st.integers(min_value=1, max_value=n))
    qa_min = n - qc + 1
    if qa_min > n:
        qa_min = n
    qa = data.draw(st.integers(min_value=qa_min, max_value=n))
    spec = QuorumSpec(n_sites=n, commit_quorum=qc, abort_quorum=qa)
    # Membership is exclusive per site (paper change 4): partition the
    # sites into replicated / pledged / neither.
    replicated = data.draw(st.integers(min_value=0, max_value=n))
    pledged = data.draw(st.integers(min_value=0, max_value=n - replicated))
    assert not (spec.can_commit(replicated) and spec.can_abort(pledged))
