"""Unit tests for deterministic named RNG streams."""

from repro.sim.rng import RngStreams


def test_same_seed_same_sequence():
    a = RngStreams(42).stream("net")
    b = RngStreams(42).stream("net")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_streams_independent():
    rngs = RngStreams(42)
    net = [rngs.stream("net").random() for _ in range(5)]
    rngs2 = RngStreams(42)
    # Interleave a draw from another stream; "net" is unaffected.
    rngs2.stream("disk").random()
    net2 = [rngs2.stream("net").random() for _ in range(5)]
    assert net == net2


def test_different_names_different_sequences():
    rngs = RngStreams(0)
    assert rngs.stream("a").random() != rngs.stream("b").random()


def test_different_seeds_different_sequences():
    assert RngStreams(1).stream("x").random() != RngStreams(2).stream("x").random()


def test_stream_is_cached():
    rngs = RngStreams(0)
    assert rngs.stream("x") is rngs.stream("x")


def test_reseed_restarts():
    rngs = RngStreams(7)
    first = rngs.stream("x").random()
    rngs.reseed(7)
    assert rngs.stream("x").random() == first


def test_helpers_draw_from_named_streams():
    rngs = RngStreams(3)
    value = rngs.uniform("u", 5.0, 6.0)
    assert 5.0 <= value <= 6.0
    assert rngs.expovariate("e", 2.0) > 0
    __ = rngs.gauss("g", 0.0, 1.0)
