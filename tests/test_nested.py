"""Integration: Moss-model nested transactions.

Camelot transactions "can be arbitrarily nested and distributed";
subtransaction commit is volatile (relative to the parent), abort undoes
the subtree, and top-level commitment covers every site the family
touched.
"""

import pytest

from repro import CamelotSystem, Outcome, SystemConfig, TID


@pytest.fixture
def system():
    return CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))


def test_nested_begin_yields_child_tid(system):
    app = system.application("a")

    def workload():
        root = yield from app.begin()
        child = yield from app.begin(parent=root)
        grand = yield from app.begin(parent=child)
        return (root, child, grand)

    root, child, grand = system.run_process(workload())
    assert child.parent == root
    assert grand.parent == child
    assert grand.top_level == root


def test_nested_begin_with_unknown_parent_fails(system):
    app = system.application("a")

    def workload():
        with pytest.raises(RuntimeError, match="unknown parent"):
            yield from app.begin(parent=TID("T99@a"))
        return True

    assert system.run_process(workload())


def test_child_commit_then_top_commit_applies(system):
    app = system.application("a")

    def workload():
        root = yield from app.begin()
        child = yield from app.begin(parent=root)
        yield from app.write(child, "server0@a", "x", 1)
        yield from app.commit(child)
        outcome = yield from app.commit(root)
        return outcome

    assert system.run_process(workload()) is Outcome.COMMITTED
    assert system.server("server0@a").peek("x") == 1


def test_child_abort_undoes_only_subtree(system):
    app = system.application("a")

    def workload():
        root = yield from app.begin()
        yield from app.write(root, "server0@a", "kept", 1)
        child = yield from app.begin(parent=root)
        yield from app.write(child, "server0@a", "doomed", 2)
        yield from app.abort(child)
        outcome = yield from app.commit(root)
        return outcome

    assert system.run_process(workload()) is Outcome.COMMITTED
    system.run_for(1_000.0)
    assert system.server("server0@a").peek("kept") == 1
    assert system.server("server0@a").peek("doomed") is None


def test_parent_abort_undoes_committed_children(system):
    """A child commit is only relative: an ancestor abort revokes it."""
    app = system.application("a")

    def workload():
        root = yield from app.begin()
        child = yield from app.begin(parent=root)
        yield from app.write(child, "server0@a", "x", 5)
        yield from app.commit(child)
        yield from app.abort(root)

    system.run_process(workload())
    system.run_for(1_000.0)
    assert system.server("server0@a").peek("x") is None


def test_child_locks_inherited_by_parent(system):
    app = system.application("a")

    def workload():
        root = yield from app.begin()
        child = yield from app.begin(parent=root)
        yield from app.write(child, "server0@a", "x", 1)
        yield from app.commit(child)
        return root

    root = system.run_process(workload())
    system.run_for(500.0)
    locks = system.server("server0@a").locks
    assert locks.retainers_of("x"), "parent should retain the child's lock"
    retainer = next(iter(locks.retainers_of("x")))
    assert retainer == root


def test_sibling_can_use_lock_after_child_commit(system):
    app = system.application("a")

    def workload():
        root = yield from app.begin()
        c1 = yield from app.begin(parent=root)
        yield from app.write(c1, "server0@a", "x", 1)
        yield from app.commit(c1)
        c2 = yield from app.begin(parent=root)
        yield from app.write(c2, "server0@a", "x", 2)
        yield from app.commit(c2)
        outcome = yield from app.commit(root)
        return outcome

    assert system.run_process(workload()) is Outcome.COMMITTED
    assert system.server("server0@a").peek("x") == 2


def test_unrelated_transaction_blocked_until_top_commit(system):
    app = system.application("a")
    order = []

    def family():
        root = yield from app.begin()
        child = yield from app.begin(parent=root)
        yield from app.write(child, "server0@a", "x", 1)
        yield from app.commit(child)
        order.append("family-pre-commit")
        yield from app.commit(root)
        order.append("family-committed")

    app2 = system.application("a", name="outsider")

    def outsider():
        from repro.sim.process import Sleep

        yield Sleep(30.0)  # let the family take the lock first
        tid = yield from app2.begin()
        yield from app2.write(tid, "server0@a", "x", 99)
        order.append("outsider-wrote")
        yield from app2.commit(tid)

    system.spawn(family(), name="family")
    system.spawn(outsider(), name="outsider")
    system.run_for(30_000.0)
    assert order.index("outsider-wrote") > order.index("family-committed")


def test_distributed_nested_transaction(system):
    """A child spreads to a remote site; top-level commit covers it."""
    app = system.application("a")

    def workload():
        root = yield from app.begin()
        child = yield from app.begin(parent=root)
        yield from app.write(child, "server0@b", "remote", 7)
        yield from app.commit(child)
        outcome = yield from app.commit(root)
        return (root, outcome)

    root, outcome = system.run_process(workload())
    assert outcome is Outcome.COMMITTED
    assert system.server("server0@b").peek("remote") == 7


def test_distributed_nested_abort_reaches_remote_site(system):
    app = system.application("a")

    def workload():
        root = yield from app.begin()
        child = yield from app.begin(parent=root)
        yield from app.write(child, "server0@b", "remote", 7)
        yield from app.abort(child)
        outcome = yield from app.commit(root)
        return outcome

    assert system.run_process(workload()) is Outcome.COMMITTED
    system.run_for(3_000.0)
    assert system.server("server0@b").peek("remote") is None
    assert system.server("server0@b").locks.locked_objects() == []


def test_nested_stats(system):
    app = system.application("a")

    def workload():
        root = yield from app.begin()
        c1 = yield from app.begin(parent=root)
        yield from app.write(c1, "server0@a", "x", 1)
        yield from app.commit(c1)
        c2 = yield from app.begin(parent=root)
        yield from app.abort(c2)
        yield from app.commit(root)

    system.run_process(workload())
    stats = system.tranman("a").stats
    assert stats["nested_begun"] == 2
    assert stats["nested_committed"] == 1
    assert stats["nested_aborted"] == 1


def test_deep_nesting(system):
    """A four-deep chain: write at every level, commit innermost out."""
    app = system.application("a")

    def workload():
        root = yield from app.begin()
        chain = [root]
        for depth in range(4):
            child = yield from app.begin(parent=chain[-1])
            yield from app.write(child, "server0@a", f"level{depth}", depth)
            chain.append(child)
        for tid in reversed(chain[1:]):
            yield from app.commit(tid)
        outcome = yield from app.commit(root)
        return outcome

    assert system.run_process(workload()) is Outcome.COMMITTED
    for depth in range(4):
        assert system.server("server0@a").peek(f"level{depth}") == depth
