"""Unit tests for the token-ring LAN model."""

import pytest

from repro.config import rt_pc_profile
from repro.net.lan import Lan
from repro.sim.kernel import Kernel
from repro.sim.rng import RngStreams
from repro.sim.tracing import Tracer


def quiet_cost(**overrides):
    """Cost model with all randomness off, for exact-latency asserts."""
    base = dict(datagram_send_jitter=0.0, datagram_jitter_base=0.0,
                datagram_jitter_per_load=0.0)
    base.update(overrides)
    return rt_pc_profile().with_overrides(**base)


def build(cost=None, seed=0):
    k = Kernel()
    lan = Lan(k, cost or quiet_cost(), RngStreams(seed), Tracer())
    for name in ("a", "b", "c"):
        lan.register_site(name, None)
    return k, lan


def test_unicast_latency_is_datagram_constant():
    k, lan = build()
    arrived = []
    lan.unicast("a", "b", "payload", lambda p: arrived.append((p, k.now)))
    k.run()
    assert arrived == [("payload", 10.0)]


def test_back_to_back_sends_serialize_at_nic():
    """The paper: the third prepare leaves ~3.4 ms after the first."""
    k, lan = build()
    arrivals = []
    for i in range(3):
        lan.unicast("a", "b", i, lambda p: arrivals.append((p, k.now)))
    k.run()
    times = [t for _, t in sorted(arrivals)]
    assert times[0] == pytest.approx(10.0)
    assert times[1] == pytest.approx(11.7)
    assert times[2] == pytest.approx(13.4)


def test_multicast_single_cycle_and_shared_transit():
    k, lan = build()
    arrivals = []
    lan.multicast("a", ["b", "c"], lambda d: d,
                  lambda d: (lambda p: arrivals.append((p, k.now))))
    k.run()
    assert sorted(p for p, _ in arrivals) == ["b", "c"]
    times = {t for _, t in arrivals}
    assert times == {10.0}  # simultaneous, one send cycle


def test_partition_drops_cross_group_traffic():
    k, lan = build()
    arrived = []
    lan.partition([["a"], ["b", "c"]])
    lan.unicast("a", "b", "x", arrived.append)
    lan.unicast("b", "c", "y", arrived.append)
    k.run()
    assert arrived == ["y"]
    assert lan.dropped == 1
    assert lan.dropped_partition == 1
    assert lan.dropped_loss == 0 and lan.dropped_dead == 0


def test_heal_restores_connectivity():
    k, lan = build()
    lan.partition([["a"], ["b"]])
    lan.heal()
    arrived = []
    lan.unicast("a", "b", "x", arrived.append)
    k.run()
    assert arrived == ["x"]


def test_reachable_reflects_partition():
    __, lan = build()
    assert lan.reachable("a", "b")
    lan.partition([["a"], ["b"]])
    assert not lan.reachable("a", "b")
    assert not lan.reachable("b", "c")  # b has its own group; c stayed in 0
    assert lan.reachable("a", "a")
    # Sites in the same named group reach each other; unnamed sites
    # stay together in group 0.
    lan.partition([["b", "c"]])
    assert lan.reachable("b", "c")
    assert not lan.reachable("a", "b")


def test_crashed_destination_loses_mail():
    class FakeSite:
        alive = True

    k = Kernel()
    lan = Lan(k, quiet_cost(), RngStreams(0), Tracer())
    site_b = FakeSite()
    lan.register_site("a", FakeSite())
    lan.register_site("b", site_b)
    arrived = []
    lan.unicast("a", "b", "x", arrived.append)
    site_b.alive = False  # crashes while the message is in flight
    k.run()
    assert arrived == []
    assert lan.dropped == 1
    assert lan.dropped_dead == 1
    assert lan.dropped_partition == 0 and lan.dropped_loss == 0


def test_crashed_source_cannot_send():
    class FakeSite:
        alive = False

    k = Kernel()
    lan = Lan(k, quiet_cost(), RngStreams(0), Tracer())
    lan.register_site("a", FakeSite())
    lan.register_site("b", None)
    arrived = []
    lan.unicast("a", "b", "x", arrived.append)
    k.run()
    assert arrived == []


def test_message_loss_probability():
    cost = quiet_cost()
    k = Kernel()
    lan = Lan(k, cost, RngStreams(0), Tracer())
    lan.register_site("a", None)
    lan.register_site("b", None)
    lan.loss_probability = 0.5
    arrived = []
    for i in range(200):
        lan.unicast("a", "b", i, arrived.append)
    k.run()
    assert 50 < len(arrived) < 150  # roughly half


def test_jitter_grows_with_load():
    cost = rt_pc_profile().with_overrides(datagram_send_jitter=0.0,
                                          datagram_jitter_base=0.5,
                                          datagram_jitter_per_load=3.0)
    # Measure mean transit when alone vs amid heavy traffic.
    def mean_transit(background):
        k = Kernel()
        lan = Lan(k, cost, RngStreams(1), Tracer())
        for name in ("a", "b", "c"):
            lan.register_site(name, None)
        samples = []
        for i in range(100):
            base = i * 100.0
            if background:
                for j in range(8):
                    k.schedule(base, lan.unicast, "c", "b", None,
                               lambda p: None)
            def send(t0=base):
                sent_at = k.now
                lan.unicast("a", "b", None,
                            lambda p, s=sent_at: samples.append(k.now - s))
            k.schedule(base + 0.1, send)
        k.run()
        return sum(samples) / len(samples)

    assert mean_transit(True) > mean_transit(False) + 1.0


def test_send_jitter_charged_per_event_not_per_destination():
    cost = rt_pc_profile().with_overrides(datagram_send_jitter=5.0,
                                          datagram_jitter_base=0.0,
                                          datagram_jitter_per_load=0.0)
    k = Kernel()
    lan = Lan(k, cost, RngStreams(3), Tracer())
    for name in ("a", "b", "c", "d"):
        lan.register_site(name, None)
    arrivals = []
    lan.multicast("a", ["b", "c", "d"], lambda d: d,
                  lambda d: (lambda p: arrivals.append(k.now)))
    k.run()
    assert len(set(arrivals)) == 1  # one draw for the whole group


def test_drop_counters_split_by_cause():
    class FakeSite:
        alive = True

    k = Kernel()
    tracer = Tracer()
    lan = Lan(k, quiet_cost(), RngStreams(0), tracer)
    sites = {name: FakeSite() for name in ("a", "b", "c")}
    for name, site in sites.items():
        lan.register_site(name, site)

    # Partition drop: a -> b across the boundary.
    lan.partition([["a"], ["b", "c"]])
    assert lan.partitioned
    lan.unicast("a", "b", "x", lambda p: None)
    k.run()
    lan.heal()
    assert not lan.partitioned

    # Dead-destination drop: c dies while mail is in flight.
    lan.unicast("a", "c", "x", lambda p: None)
    sites["c"].alive = False
    k.run()
    sites["c"].alive = True

    # Loss drop: force certain loss for one send.
    lan.loss_probability = 0.999999
    lan.unicast("a", "b", "x", lambda p: None)
    k.run()

    assert lan.drop_counts() == {"loss": 1, "partition": 1, "dead": 1,
                                 "total": 3}
    assert lan.dropped == 3
    assert tracer.counters.get("net.drop.partition") == 1
    assert tracer.counters.get("net.drop.dead") == 1
    assert tracer.counters.get("net.lost") == 1


def test_dead_source_counts_as_dead_drop():
    class FakeSite:
        alive = False

    k = Kernel()
    tracer = Tracer()
    lan = Lan(k, quiet_cost(), RngStreams(0), tracer)
    lan.register_site("a", FakeSite())
    lan.register_site("b", None)
    lan.unicast("a", "b", "x", lambda p: None)
    lan.multicast("a", ["b"], lambda d: d, lambda d: (lambda p: None))
    k.run()
    assert lan.dropped_dead == 2
    assert tracer.counters.get("net.drop.dead") == 2
