"""Sans-IO unit tests for the abort protocol."""

from repro.core.abortproto import AbortInitiator, AbortParticipant
from repro.core.messages import FamilyAbort, FamilyAbortAck
from repro.core.outcomes import Outcome
from repro.core.tid import TID

from tests.machine_harness import MachineHost

TID1 = TID("T1@a")


def initiator(known=("b", "c"), **kw):
    return MachineHost(AbortInitiator(TID1, "a", list(known), **kw)).start()


def test_initiator_aborts_locally_and_spreads():
    host = initiator()
    assert host.local_aborts == [TID1]
    assert host.written_kinds() == ["abort"]
    assert host.completions == [Outcome.ABORTED]
    targets = [d for d, m in host.sent if isinstance(m, FamilyAbort)]
    assert sorted(targets) == ["b", "c"]
    # The message carries everything we know, so receivers can forward.
    assert host.sent[0][1].known_sites == ("a", "b", "c")


def test_initiator_finishes_when_all_ack():
    host = initiator()
    host.deliver(FamilyAbortAck(tid=TID1, sender="b"))
    assert host.forgotten == []
    host.deliver(FamilyAbortAck(tid=TID1, sender="c"))
    assert host.forgotten == [TID1]


def test_initiator_with_no_known_sites_finishes_immediately():
    host = initiator(known=())
    assert host.forgotten == [TID1]


def test_initiator_retries_unacked_sites():
    from repro.core.abortproto import ABORT_ACK_TIMER

    host = initiator()
    host.deliver(FamilyAbortAck(tid=TID1, sender="b"))
    host.fire_timer(ABORT_ACK_TIMER)
    retry_targets = [d for d, m in host.sent if isinstance(m, FamilyAbort)]
    assert retry_targets.count("c") == 2
    assert retry_targets.count("b") == 1


def test_initiator_gives_up_after_max_retries_presumed_abort():
    from repro.core.abortproto import ABORT_ACK_TIMER

    host = initiator(max_retries=2)
    host.fire_timer(ABORT_ACK_TIMER)
    host.fire_timer(ABORT_ACK_TIMER)
    assert host.forgotten == []
    host.fire_timer(ABORT_ACK_TIMER)
    assert host.forgotten == [TID1]  # safe: presumed abort covers the rest


def test_initiator_merges_incoming_knowledge():
    host = initiator(known=("b",))
    host.deliver(FamilyAbort(tid=TID1, sender="b",
                             known_sites=("a", "b", "d")))
    # Acked b, and learned about (and told) d.
    acks = [d for d, m in host.sent if isinstance(m, FamilyAbortAck)]
    assert acks == ["b"]
    aborts_to = [d for d, m in host.sent if isinstance(m, FamilyAbort)]
    assert "d" in aborts_to


def test_participant_aborts_acks_and_forwards_unknown_sites():
    participant = AbortParticipant("b")
    msg = FamilyAbort(tid=TID1, sender="a", known_sites=("a", "b"))
    host = MachineHost(machine=None)
    host.execute(participant.on_abort(msg, locally_known_sites=["c", "d"]))
    assert host.local_aborts == [TID1]
    acks = [d for d, m in host.sent if isinstance(m, FamilyAbortAck)]
    assert acks == ["a"]
    forwards = sorted(d for d, m in host.sent if isinstance(m, FamilyAbort))
    assert forwards == ["c", "d"]
    forwarded = [m for _, m in host.sent if isinstance(m, FamilyAbort)][0]
    assert set(forwarded.known_sites) == {"a", "b", "c", "d"}


def test_participant_does_not_forward_already_known_sites():
    participant = AbortParticipant("b")
    msg = FamilyAbort(tid=TID1, sender="a", known_sites=("a", "b", "c"))
    host = MachineHost(machine=None)
    host.execute(participant.on_abort(msg, locally_known_sites=["c"]))
    assert not any(isinstance(m, FamilyAbort) for _, m in host.sent)


def test_flooding_reaches_transitively_known_sites():
    """No single site knows everyone; the abort still reaches all.

    a knows {b}; b knows {c}; c knows {d}.  Drive the exchange by hand.
    """
    init = initiator(known=("b",))
    p_b, p_c, p_d = (AbortParticipant(s) for s in "bcd")
    local_knowledge = {"b": ["c"], "c": ["d"], "d": []}
    inboxes = {s: [] for s in "bcd"}
    for dst, m in init.sent:
        if isinstance(m, FamilyAbort):
            inboxes[dst].append(m)
    reached = set()
    participants = {"b": p_b, "c": p_c, "d": p_d}
    for _ in range(4):  # enough rounds to flood
        for site, inbox in inboxes.items():
            msgs, inboxes[site] = inbox, []
            for m in msgs:
                reached.add(site)
                host = MachineHost(machine=None)
                host.execute(participants[site].on_abort(
                    m, local_knowledge[site]))
                for dst, out in host.sent:
                    if isinstance(out, FamilyAbort) and dst in inboxes:
                        inboxes[dst].append(out)
    assert reached == {"b", "c", "d"}
