"""Structural tests for the per-figure experiment functions (small
trial counts; the benchmarks run them at full size)."""

import pytest

from repro.bench.figures import (
    figure2,
    figure3,
    lock_contention,
    rpc_breakdown,
    table1_report,
    table2_measured,
    table3,
)


def test_table1_report_has_eight_rows():
    rows = table1_report()
    assert len(rows) == 8
    names = {r.name for r in rows}
    assert "Context switch, swtch()" in names


def test_table2_measured_structure():
    measured = table2_measured(trials=8)
    names = {m.name for m in measured}
    assert {"Log force", "Datagram", "Remote RPC"} <= names
    for m in measured:
        assert m.measured >= 0
        assert m.configured >= 0


def test_rpc_breakdown_structure():
    result = rpc_breakdown(calls=20)
    assert result.measured_n == 20
    assert result.components[-1].name == "Total Camelot RPC"
    assert result.accounted_ms == pytest.approx(28.5)


def test_figure2_structure_small():
    series = figure2(trials=4, subs_range=(0, 1))
    assert set(series) == {"optimized write", "semi-optimized write",
                           "unoptimized write", "read"}
    for fs in series.values():
        assert [n for n, _ in fs.points] == [0, 1]
        assert len(fs.means()) == 2


def test_figure3_structure_small():
    series = figure3(trials=4, subs_range=(0, 1))
    assert set(series) == {"write", "read"}
    write = series["write"]
    assert write.means()[1] > write.means()[0]


def test_table3_rows_have_paper_anchors():
    rows = table3(trials=4)
    labels = [r.label for r in rows]
    assert "local update" in labels
    for row in rows:
        if row.paper_static is not None:
            assert row.paper_measured is not None
        assert row.static_ms > 0
        assert row.measured.n == 4


def test_lock_contention_reports_both_variants():
    result = lock_contention(txns=6)
    assert set(result.per_variant) == {"optimized", "unoptimized"}
    assert result.per_variant["unoptimized"] >= \
        result.per_variant["optimized"]
