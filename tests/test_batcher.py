"""Unit tests for group commit."""

from repro.config import rt_pc_profile
from repro.log.batcher import GroupCommitBatcher
from repro.log.disk import DiskModel
from repro.log.records import commit_record
from repro.log.storage import StableStore
from repro.log.wal import WriteAheadLog
from repro.sim.kernel import Kernel
from repro.sim.process import Process, Sleep
from repro.sim.tracing import Tracer


def build(enabled=True, window=30.0, limit=32):
    k = Kernel()
    cost = rt_pc_profile()
    wal = WriteAheadLog(k, cost, DiskModel(k, cost), StableStore("a"),
                        "a", Tracer())
    batcher = GroupCommitBatcher(k, wal, Tracer(), window_ms=window,
                                 batch_limit=limit, enabled=enabled)
    return k, wal, batcher


def test_concurrent_forces_fold_into_one_write():
    k, wal, batcher = build()
    done = []

    def committer(i):
        rec = wal.append(commit_record(f"T{i}@a", "a"))
        yield from batcher.force(rec.lsn)
        done.append(k.now)

    for i in range(5):
        Process(k, committer(i))
    k.run()
    assert wal.disk.writes == 1
    assert batcher.mean_batch_size == 5.0
    # All five committers released together.
    assert len(set(done)) == 1


def test_window_adds_latency():
    """Group commit 'sacrifices latency in order to increase throughput'."""
    k, wal, batcher = build(window=30.0)

    def committer():
        rec = wal.append(commit_record("T1@a", "a"))
        yield from batcher.force(rec.lsn)
        return k.now

    proc = Process(k, committer())
    k.run()
    # window (30) + disk write (~15) > unbatched force (~15)
    assert proc.done.value >= 45.0


def test_batch_limit_fires_early():
    k, wal, batcher = build(window=10_000.0, limit=3)
    done = []

    def committer(i):
        rec = wal.append(commit_record(f"T{i}@a", "a"))
        yield from batcher.force(rec.lsn)
        done.append(k.now)

    for i in range(3):
        Process(k, committer(i))
    k.run()
    assert done and max(done) < 100.0  # did not wait for the huge window


def test_disabled_batcher_degrades_to_plain_force():
    k, wal, batcher = build(enabled=False)
    done = []

    def committer(i):
        rec = wal.append(commit_record(f"T{i}@a", "a"))
        yield from batcher.force(rec.lsn)
        done.append(k.now)

    for i in range(3):
        Process(k, committer(i))
    k.run()
    assert wal.disk.writes == 3
    assert batcher.rounds_flushed == 0


def test_rounds_do_not_leak_across_quiet_periods():
    k, wal, batcher = build(window=30.0)

    def committer(i, delay):
        yield Sleep(delay)
        rec = wal.append(commit_record(f"T{i}@a", "a"))
        yield from batcher.force(rec.lsn)

    Process(k, committer(0, 0.0))
    Process(k, committer(1, 500.0))
    k.run()
    assert batcher.rounds_flushed == 2


def test_force_of_already_durable_lsn_is_noop():
    k, wal, batcher = build()

    def body():
        rec = wal.append(commit_record("T1@a", "a"))
        yield from batcher.force(rec.lsn)
        t_mid = k.now
        yield from batcher.force(rec.lsn)
        assert k.now == t_mid

    Process(k, body())
    k.run()


def test_records_appended_during_round_still_covered():
    """A force request whose LSN outruns the fired round re-forces."""
    k, wal, batcher = build(window=5.0)
    done = []

    def early():
        rec = wal.append(commit_record("T1@a", "a"))
        yield from batcher.force(rec.lsn)
        done.append(("early", wal.is_durable(rec.lsn)))

    def late():
        yield Sleep(4.9)
        rec = wal.append(commit_record("T2@a", "a"))
        yield from batcher.force(rec.lsn)
        done.append(("late", wal.is_durable(rec.lsn)))

    Process(k, early())
    Process(k, late())
    k.run()
    assert dict(done) == {"early": True, "late": True}
