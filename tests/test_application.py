"""Unit tests for the application layer (records, latencies, errors)."""

import pytest

from repro import (
    CamelotSystem,
    Outcome,
    ProtocolKind,
    SystemConfig,
    TID,
    TransactionAborted,
)


@pytest.fixture
def system():
    return CamelotSystem(SystemConfig(sites={"a": 1}))


def test_txn_record_tracks_latency_and_ops(system):
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "x", 1)
        yield from app.read(tid, "server0@a", "x")
        yield from app.commit(tid)

    system.run_process(workload())
    record = app.history[0]
    assert record.operations == 2
    assert record.outcome is Outcome.COMMITTED
    assert record.latency_ms is not None and record.latency_ms > 0
    assert record.commit_latency_ms is not None
    assert record.commit_latency_ms < record.latency_ms


def test_latency_lists(system):
    app = system.application("a")

    def workload():
        for _ in range(3):
            tid = yield from app.begin()
            yield from app.write(tid, "server0@a", "x", 1)
            yield from app.commit(tid)

    system.run_process(workload())
    assert len(app.latencies_ms()) == 3
    assert len(app.commit_latencies_ms()) == 3
    assert app.committed_count() == 3


def test_abort_records_aborted_outcome(system):
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "x", 1)
        yield from app.abort(tid)

    system.run_process(workload())
    assert app.history[0].outcome is Outcome.ABORTED
    assert app.committed_count() == 0


def test_operation_timeout_aborts_and_raises():
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        system.crash_site("b")
        with pytest.raises(TransactionAborted):
            yield from app.write(tid, "server0@b", "x", 1, timeout=300.0)
        return tid

    tid = system.run_process(workload())
    # The transaction was aborted as a side effect (the paper's rule).
    assert system.tranman("a").tombstones.get(str(tid)) is Outcome.ABORTED


def test_abort_of_unknown_txn_raises(system):
    app = system.application("a")

    def workload():
        with pytest.raises(TransactionAborted):
            yield from app.abort(TID("T77@a"))
        return True

    assert system.run_process(workload())


def test_minimal_transaction_helper(system):
    app = system.application("a")

    def workload():
        record = yield from app.minimal_transaction(["server0@a"])
        return record

    record = system.run_process(workload())
    assert record.outcome is Outcome.COMMITTED
    assert record.operations == 1


def test_protocol_default_from_begin(system):
    app = system.application("a")

    def workload():
        tid = yield from app.begin(protocol=ProtocolKind.NON_BLOCKING)
        yield from app.write(tid, "server0@a", "x", 1)
        # commit() without an explicit protocol uses the begin default.
        outcome = yield from app.commit(tid)
        return (tid, outcome)

    tid, outcome = system.run_process(workload())
    assert outcome is Outcome.COMMITTED
