"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import Kernel, SimulationError


def test_clock_starts_at_zero():
    assert Kernel().now == 0.0


def test_schedule_and_run_advances_clock():
    k = Kernel()
    fired = []
    k.schedule(5.0, fired.append, "x")
    k.run()
    assert fired == ["x"]
    assert k.now == 5.0


def test_events_fire_in_time_order():
    k = Kernel()
    order = []
    k.schedule(10.0, order.append, "late")
    k.schedule(1.0, order.append, "early")
    k.schedule(5.0, order.append, "middle")
    k.run()
    assert order == ["early", "middle", "late"]


def test_same_time_events_fire_in_scheduling_order():
    k = Kernel()
    order = []
    for i in range(5):
        k.schedule(3.0, order.append, i)
    k.run()
    assert order == [0, 1, 2, 3, 4]


def test_call_soon_runs_at_current_time():
    k = Kernel()
    k.schedule(7.0, lambda: k.call_soon(seen.append, k.now))
    seen = []
    k.run()
    assert seen == [7.0]
    assert k.now == 7.0


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Kernel().schedule(-1.0, lambda: None)


def test_run_until_stops_before_later_events():
    k = Kernel()
    fired = []
    k.schedule(5.0, fired.append, "a")
    k.schedule(50.0, fired.append, "b")
    k.run(until=10.0)
    assert fired == ["a"]
    assert k.now == 10.0
    k.run()
    assert fired == ["a", "b"]


def test_run_until_advances_clock_even_with_no_events():
    k = Kernel()
    k.run(until=123.0)
    assert k.now == 123.0


def test_step_returns_false_when_empty():
    assert Kernel().step() is False


def test_timer_cancellation():
    k = Kernel()
    fired = []
    timer = k.schedule(5.0, fired.append, "x")
    assert timer.active
    timer.cancel()
    assert not timer.active
    k.run()
    assert fired == []


def test_cancel_is_idempotent():
    k = Kernel()
    timer = k.schedule(5.0, lambda: None)
    timer.cancel()
    timer.cancel()
    k.run()


def test_timer_inactive_after_firing():
    k = Kernel()
    timer = k.schedule(1.0, lambda: None)
    k.run()
    assert not timer.active


def test_pending_counts_uncancelled():
    k = Kernel()
    t1 = k.schedule(1.0, lambda: None)
    k.schedule(2.0, lambda: None)
    assert k.pending == 2
    t1.cancel()
    assert k.pending == 1


def test_events_scheduled_during_run_execute():
    k = Kernel()
    result = []

    def first():
        k.schedule(5.0, result.append, "second")

    k.schedule(1.0, first)
    k.run()
    assert result == ["second"]
    assert k.now == 6.0


def test_max_events_guards_livelock():
    k = Kernel()

    def loop():
        k.schedule(0.0, loop)

    k.schedule(0.0, loop)
    with pytest.raises(SimulationError, match="max_events"):
        k.run(max_events=100)


def test_pending_is_live_counter():
    # `pending` is O(1) (a maintained counter, polled by monitoring
    # loops); it must track schedule/cancel/fire exactly.
    k = Kernel()
    timers = [k.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert k.pending == 10
    timers[0].cancel()
    timers[0].cancel()  # idempotent: must not double-decrement
    assert k.pending == 9
    k.step()  # fires t=2 (t=1 was cancelled)
    assert k.pending == 8
    k.run()
    assert k.pending == 0


def test_cancel_after_fire_does_not_corrupt_pending():
    k = Kernel()
    timer = k.schedule(1.0, lambda: None)
    k.schedule(2.0, lambda: None)
    k.run()
    assert k.pending == 0
    timer.cancel()  # late cancel of an already-fired timer: no-op
    assert k.pending == 0


def test_cancel_heavy_workload_keeps_heap_bounded():
    # Regression: cancelled entries used to accumulate unboundedly (the
    # datagram retry layer cancels a timer per delivered message).  The
    # kernel compacts once cancelled entries exceed half the heap, so
    # the heap stays within 2x the live count plus the compaction floor.
    k = Kernel()
    live = [k.schedule(100_000.0 + i, lambda: None) for i in range(50)]
    for i in range(10_000):
        k.schedule(50_000.0 + i, lambda: None).cancel()
    assert k.pending == 50
    assert k.heap_size <= 2 * (k.pending + 64)
    for timer in live:
        timer.cancel()
    assert k.pending == 0
    assert k.heap_size <= 128


def test_compaction_during_run_preserves_order():
    # Cancelling en masse from inside a callback triggers compaction
    # mid-run; the surviving events must still fire in (time, seq) order.
    k = Kernel()
    fired = []
    doomed = [k.schedule(50.0 + i, fired.append, f"doomed{i}")
              for i in range(200)]
    for i in range(5):
        k.schedule(300.0 + i, fired.append, f"live{i}")

    def cancel_all():
        for timer in doomed:
            timer.cancel()

    k.schedule(10.0, cancel_all)
    k.run()
    assert fired == [f"live{i}" for i in range(5)]
    assert k.now == 304.0


def test_post_is_fire_and_forget():
    k = Kernel()
    order = []
    k.post(5.0, order.append, "b")
    k.post(1.0, order.append, "a")
    k.post_soon(order.append, "now")
    assert k.pending == 3
    k.run()
    assert order == ["now", "a", "b"]
    assert k.pending == 0


def test_post_and_schedule_share_ordering():
    # post() and schedule() entries interleave in one heap; ties still
    # break by scheduling order.
    k = Kernel()
    order = []
    k.schedule(3.0, order.append, 1)
    k.post(3.0, order.append, 2)
    k.schedule(3.0, order.append, 3)
    k.run()
    assert order == [1, 2, 3]


def test_post_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Kernel().post(-0.5, lambda: None)


def test_reentrant_run_rejected():
    k = Kernel()

    def inner():
        k.run()

    k.schedule(0.0, inner)
    with pytest.raises(SimulationError, match="reentrant"):
        k.run()
