"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import Kernel, SimulationError


def test_clock_starts_at_zero():
    assert Kernel().now == 0.0


def test_schedule_and_run_advances_clock():
    k = Kernel()
    fired = []
    k.schedule(5.0, fired.append, "x")
    k.run()
    assert fired == ["x"]
    assert k.now == 5.0


def test_events_fire_in_time_order():
    k = Kernel()
    order = []
    k.schedule(10.0, order.append, "late")
    k.schedule(1.0, order.append, "early")
    k.schedule(5.0, order.append, "middle")
    k.run()
    assert order == ["early", "middle", "late"]


def test_same_time_events_fire_in_scheduling_order():
    k = Kernel()
    order = []
    for i in range(5):
        k.schedule(3.0, order.append, i)
    k.run()
    assert order == [0, 1, 2, 3, 4]


def test_call_soon_runs_at_current_time():
    k = Kernel()
    k.schedule(7.0, lambda: k.call_soon(seen.append, k.now))
    seen = []
    k.run()
    assert seen == [7.0]
    assert k.now == 7.0


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Kernel().schedule(-1.0, lambda: None)


def test_run_until_stops_before_later_events():
    k = Kernel()
    fired = []
    k.schedule(5.0, fired.append, "a")
    k.schedule(50.0, fired.append, "b")
    k.run(until=10.0)
    assert fired == ["a"]
    assert k.now == 10.0
    k.run()
    assert fired == ["a", "b"]


def test_run_until_advances_clock_even_with_no_events():
    k = Kernel()
    k.run(until=123.0)
    assert k.now == 123.0


def test_step_returns_false_when_empty():
    assert Kernel().step() is False


def test_timer_cancellation():
    k = Kernel()
    fired = []
    timer = k.schedule(5.0, fired.append, "x")
    assert timer.active
    timer.cancel()
    assert not timer.active
    k.run()
    assert fired == []


def test_cancel_is_idempotent():
    k = Kernel()
    timer = k.schedule(5.0, lambda: None)
    timer.cancel()
    timer.cancel()
    k.run()


def test_timer_inactive_after_firing():
    k = Kernel()
    timer = k.schedule(1.0, lambda: None)
    k.run()
    assert not timer.active


def test_pending_counts_uncancelled():
    k = Kernel()
    t1 = k.schedule(1.0, lambda: None)
    k.schedule(2.0, lambda: None)
    assert k.pending == 2
    t1.cancel()
    assert k.pending == 1


def test_events_scheduled_during_run_execute():
    k = Kernel()
    result = []

    def first():
        k.schedule(5.0, result.append, "second")

    k.schedule(1.0, first)
    k.run()
    assert result == ["second"]
    assert k.now == 6.0


def test_max_events_guards_livelock():
    k = Kernel()

    def loop():
        k.schedule(0.0, loop)

    k.schedule(0.0, loop)
    with pytest.raises(SimulationError, match="max_events"):
        k.run(max_events=100)


def test_pending_is_live_counter():
    # `pending` is O(1) (a maintained counter, polled by monitoring
    # loops); it must track schedule/cancel/fire exactly.
    k = Kernel()
    timers = [k.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert k.pending == 10
    timers[0].cancel()
    timers[0].cancel()  # idempotent: must not double-decrement
    assert k.pending == 9
    k.step()  # fires t=2 (t=1 was cancelled)
    assert k.pending == 8
    k.run()
    assert k.pending == 0


def test_cancel_after_fire_does_not_corrupt_pending():
    k = Kernel()
    timer = k.schedule(1.0, lambda: None)
    k.schedule(2.0, lambda: None)
    k.run()
    assert k.pending == 0
    timer.cancel()  # late cancel of an already-fired timer: no-op
    assert k.pending == 0


def test_cancel_heavy_workload_keeps_heap_bounded():
    # Regression: cancelled entries used to accumulate unboundedly (the
    # datagram retry layer cancels a timer per delivered message).  The
    # kernel compacts once cancelled entries exceed half the heap, so
    # the heap stays within 2x the live count plus the compaction floor.
    k = Kernel()
    live = [k.schedule(100_000.0 + i, lambda: None) for i in range(50)]
    for i in range(10_000):
        k.schedule(50_000.0 + i, lambda: None).cancel()
    assert k.pending == 50
    assert k.heap_size <= 2 * (k.pending + 64)
    for timer in live:
        timer.cancel()
    assert k.pending == 0
    assert k.heap_size <= 128


def test_compaction_during_run_preserves_order():
    # Cancelling en masse from inside a callback triggers compaction
    # mid-run; the surviving events must still fire in (time, seq) order.
    k = Kernel()
    fired = []
    doomed = [k.schedule(50.0 + i, fired.append, f"doomed{i}")
              for i in range(200)]
    for i in range(5):
        k.schedule(300.0 + i, fired.append, f"live{i}")

    def cancel_all():
        for timer in doomed:
            timer.cancel()

    k.schedule(10.0, cancel_all)
    k.run()
    assert fired == [f"live{i}" for i in range(5)]
    assert k.now == 304.0


def test_post_is_fire_and_forget():
    k = Kernel()
    order = []
    k.post(5.0, order.append, "b")
    k.post(1.0, order.append, "a")
    k.post_soon(order.append, "now")
    assert k.pending == 3
    k.run()
    assert order == ["now", "a", "b"]
    assert k.pending == 0


def test_post_and_schedule_share_ordering():
    # post() and schedule() entries interleave in one heap; ties still
    # break by scheduling order.
    k = Kernel()
    order = []
    k.schedule(3.0, order.append, 1)
    k.post(3.0, order.append, 2)
    k.schedule(3.0, order.append, 3)
    k.run()
    assert order == [1, 2, 3]


def test_post_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Kernel().post(-0.5, lambda: None)


def test_reentrant_run_rejected():
    k = Kernel()

    def inner():
        k.run()

    k.schedule(0.0, inner)
    with pytest.raises(SimulationError, match="reentrant"):
        k.run()


def test_cancel_storm_with_posts_keeps_pending_exact():
    """Fire-and-forget audit regression (PR 2): post()/post_soon()
    entries interleaved with a cancel-heavy Timer storm must never
    leave the O(1) ``pending`` counter stale — not when compaction
    rebuilds the heap around them, not when cancellation happens from
    inside a callback at the same instant as posted events.

    post() entries carry no kernel backref (slot _KERNEL is None) and
    can never be cancelled; the audit of the PR-1 call sites (IPC, LAN,
    WAL watches, event triggers, process resume) confirmed each one
    either never needs cancellation or guards liveness at fire time
    instead.  This test pins the counter bookkeeping that audit relies
    on.
    """
    k = Kernel()
    fired = []
    # Enough doomed timers to cross the compaction floor (64) several
    # times while posts sit interleaved in the same heap.
    doomed = [k.schedule(50.0 + (i % 7), fired.append, ("doomed", i))
              for i in range(300)]
    for i in range(50):
        k.post(50.0 + (i % 7), fired.append, ("post", i))
        k.post_soon(fired.append, ("soon", i))
    survivors = [k.schedule(60.0, fired.append, ("live", i))
                 for i in range(3)]
    assert k.pending == 300 + 100 + 3

    def cancel_all():
        for t in doomed:
            t.cancel()
        # Compaction has rebuilt the heap: every not-yet-fired post and
        # survivor is still pending (the 50 post_soon events fired at
        # t=0), every doomed timer is gone from the count.
        assert k.pending == 50 + 3

    k.schedule(1.0, cancel_all)
    k.run()
    assert k.pending == 0
    assert k.heap_size == 0
    assert len([f for f in fired if f[0] == "post"]) == 50
    assert len([f for f in fired if f[0] == "soon"]) == 50
    assert len([f for f in fired if f[0] == "live"]) == 3
    assert not [f for f in fired if f[0] == "doomed"]
    assert all(t.active is False for t in doomed + survivors)


def test_monitor_hook_sees_every_event_without_reordering():
    """Kernel.monitor (the race-detector hook) must observe every
    schedule and every dispatch while leaving event order untouched."""

    class Recorder:
        def __init__(self):
            self.scheduled = []
            self.fired = []

        def on_schedule(self, seq):
            self.scheduled.append(seq)

        def before_fire(self, time, seq, fn, args):
            self.fired.append((time, seq))

    def workload(k, order):
        k.schedule(2.0, order.append, "s2")
        k.post(1.0, order.append, "p1")
        k.post_soon(order.append, "now")
        doomed = k.schedule(5.0, order.append, "never")
        k.schedule(3.0, doomed.cancel)

    plain = Kernel()
    plain_order = []
    workload(plain, plain_order)
    plain.run()

    k = Kernel()
    mon = Recorder()
    k.monitor = mon
    monitored_order = []
    workload(k, monitored_order)
    k.run()

    assert monitored_order == plain_order == ["now", "p1", "s2"]
    assert len(mon.scheduled) == 5          # every schedule/post/post_soon
    assert len(mon.fired) == 4              # cancelled timer never fires
    times = [t for t, _ in mon.fired]
    assert times == sorted(times)
