"""Integration: crashes and partitions against both commit protocols.

These are the scenarios the non-blocking protocol exists for (paper
§3.3): any *single* site crash or partition leaves the surviving sites
able to decide, where two-phase commit blocks.
"""


from repro import CamelotSystem, Outcome, ProtocolKind, SystemConfig


def build():
    return CamelotSystem(SystemConfig(sites={"a": 1, "b": 1, "c": 1}))


def start_txn(system, protocol):
    """Spawn a 3-site write transaction from site a; returns state dict."""
    app = system.application("a")
    state = {}

    def workload():
        tid = yield from app.begin(protocol=protocol)
        state["tid"] = str(tid)
        for s in system.default_services():
            yield from app.write(tid, s, "x", 9)
        outcome = yield from app.commit(tid, protocol=protocol)
        state["outcome"] = outcome

    system.spawn(workload(), name="txn")
    return state


def survivor_outcomes(system, state, sites=("b", "c")):
    tid = state.get("tid")
    return {s: system.tranman(s).tombstones.get(tid) for s in sites}


def locks_held(system, site):
    return bool(system.server(f"server0@{site}").locks.locked_objects())


# The 3-site write txn's phases (RT-PC profile, measured): ops done
# ~100ms; 2PC prepares arrive ~115, votes ~135, commit ~150.
# NB: coordinator prepare force ~115, prepares ~130, votes ~150,
# replicate ~175, commit point ~195, notify ~200.


# ------------------------------------------------------------- 2PC


def test_2pc_coordinator_crash_in_window_blocks_subordinates():
    system = build()
    state = start_txn(system, ProtocolKind.TWO_PHASE)
    system.failures.crash_at(138.0, "a")
    system.run_for(30_000.0)
    # Subordinates prepared, coordinator dead, no outcome anywhere:
    # blocked — locks held, inquiries unanswered.
    assert survivor_outcomes(system, state) == {"b": None, "c": None}
    assert locks_held(system, "b") and locks_held(system, "c")
    assert system.tracer.count("2pc.blocked_inquiry") > 2


def test_2pc_blocked_subordinates_resolve_on_recovery_presumed_abort():
    system = build()
    state = start_txn(system, ProtocolKind.TWO_PHASE)
    system.failures.crash_at(138.0, "a")
    system.failures.restart_at(5_000.0, "a")
    system.run_for(30_000.0)
    # The recovered coordinator has no commit record: presumed abort.
    outcomes = survivor_outcomes(system, state)
    assert set(outcomes.values()) == {Outcome.ABORTED}
    assert not locks_held(system, "b")
    assert system.server("server0@b").peek("x") is None


def test_2pc_coordinator_crash_after_commit_record_notifies_on_recovery():
    system = build()
    state = start_txn(system, ProtocolKind.TWO_PHASE)
    # Crash between the commit-record force and the notices requires
    # surgical timing; approximate by crashing just after commit returns
    # but before acks, then losing the notices via a partition.
    system.failures.partition_at(148.0, [["a"], ["b", "c"]])
    system.failures.crash_at(190.0, "a")
    system.failures.heal_at(200.0)
    system.failures.restart_at(2_000.0, "a")
    system.run_for(40_000.0)
    if state.get("outcome") is Outcome.COMMITTED:
        # Recovery must push the outcome to the blocked subordinates.
        outcomes = survivor_outcomes(system, state)
        assert set(outcomes.values()) == {Outcome.COMMITTED}
        assert system.server("server0@b").peek("x") == 9


def test_2pc_subordinate_crash_before_vote_aborts():
    system = build()
    state = start_txn(system, ProtocolKind.TWO_PHASE)
    system.failures.crash_at(88.0, "b")
    system.run_for(60_000.0)
    assert state.get("outcome") is Outcome.ABORTED
    assert system.tranman("c").tombstones.get(state["tid"]) in (
        Outcome.ABORTED, None)
    assert not locks_held(system, "c")


def test_2pc_message_loss_retries_still_commit():
    system = build()
    system.lan.loss_probability = 0.15
    app = system.application("a")
    committed = 0

    def workload():
        nonlocal committed
        for _ in range(5):
            try:
                tid = yield from app.begin()
                for s in system.default_services():
                    yield from app.write(tid, s, "x", 1, timeout=10_000.0)
                outcome = yield from app.commit(tid)
                if outcome is Outcome.COMMITTED:
                    committed += 1
            except Exception:
                continue

    system.spawn(workload(), name="lossy")
    system.run_for(120_000.0)
    assert committed >= 3  # retries push most through


# ------------------------------------------------------------ NB


def test_nb_coordinator_crash_pre_replication_survivors_abort():
    system = build()
    state = start_txn(system, ProtocolKind.NON_BLOCKING)
    system.failures.crash_at(155.0, "a")
    system.run_for(40_000.0)
    outcomes = survivor_outcomes(system, state)
    assert set(outcomes.values()) == {Outcome.ABORTED}
    assert not locks_held(system, "b") and not locks_held(system, "c")
    assert system.tracer.count("tranman.takeover") >= 1


def test_nb_coordinator_crash_post_replication_survivors_commit():
    system = build()
    state = start_txn(system, ProtocolKind.NON_BLOCKING)
    system.failures.crash_at(193.0, "a")
    system.run_for(40_000.0)
    outcomes = survivor_outcomes(system, state)
    assert set(outcomes.values()) == {Outcome.COMMITTED}
    assert system.server("server0@b").peek("x") == 9
    assert system.server("server0@c").peek("x") == 9


def test_nb_survivors_agree_for_any_single_crash_time():
    """Sweep the crash instant across the whole protocol window: the
    survivors always decide, and always agree."""
    for crash_at in (120.0, 150.0, 170.0, 185.0, 200.0):
        system = build()
        state = start_txn(system, ProtocolKind.NON_BLOCKING)
        system.failures.crash_at(crash_at, "a")
        system.run_for(40_000.0)
        outcomes = set(survivor_outcomes(system, state).values())
        assert len(outcomes) == 1, f"crash@{crash_at}: split {outcomes}"
        assert outcomes != {None}, f"crash@{crash_at}: blocked"
        assert not locks_held(system, "b"), f"crash@{crash_at}"


def test_nb_partitioned_coordinator_majority_side_decides():
    system = build()
    state = start_txn(system, ProtocolKind.NON_BLOCKING)
    system.failures.partition_at(160.0, [["a"], ["b", "c"]])
    system.run_for(40_000.0)
    outcomes = set(survivor_outcomes(system, state).values())
    assert len(outcomes) == 1 and outcomes != {None}
    # The isolated coordinator must not have decided the opposite way.
    coord_tomb = system.tranman("a").tombstones.get(state["tid"])
    if coord_tomb is not None:
        assert {coord_tomb} == outcomes


def test_nb_partition_heals_coordinator_learns_outcome():
    system = build()
    state = start_txn(system, ProtocolKind.NON_BLOCKING)
    system.failures.partition_at(160.0, [["a"], ["b", "c"]])
    system.failures.heal_at(15_000.0)
    system.run_for(60_000.0)
    tid = state["tid"]
    all_outcomes = {s: system.tranman(s).tombstones.get(tid)
                    for s in ("a", "b", "c")}
    assert len(set(all_outcomes.values())) == 1
    assert None not in all_outcomes.values()


def test_nb_two_failures_may_block_but_never_split():
    """With two of three sites dead, the survivor cannot form any quorum
    — it blocks (as it provably must) but never guesses."""
    system = build()
    state = start_txn(system, ProtocolKind.NON_BLOCKING)
    system.failures.crash_at(155.0, "a")
    system.failures.crash_at(156.0, "c")
    system.run_for(40_000.0)
    assert system.tranman("b").tombstones.get(state["tid"]) is None
    assert system.tracer.count("nb.blocked") >= 1


def test_nb_blocked_survivor_resolves_when_peer_restarts():
    system = build()
    state = start_txn(system, ProtocolKind.NON_BLOCKING)
    system.failures.crash_at(155.0, "a")
    system.failures.crash_at(156.0, "c")
    system.failures.restart_at(10_000.0, "c")
    system.run_for(80_000.0)
    # With c back (prepared in its log), b+c can form the abort quorum.
    outcomes = survivor_outcomes(system, state)
    assert set(outcomes.values()) == {Outcome.ABORTED}


def test_nb_simultaneous_takeovers_agree():
    """Both survivors time out at nearly the same instant and both
    become coordinators — 'having several simultaneous coordinators is
    possible, but is not a problem'."""
    system = build()
    state = start_txn(system, ProtocolKind.NON_BLOCKING)
    system.failures.crash_at(193.0, "a")  # post-replication
    system.run_for(40_000.0)
    assert system.tracer.count("tranman.takeover") >= 2
    decided = [m for m in
               (system.tracer.of_kind("nb.takeover_decided") or [])]
    outcomes = {e.detail.get("outcome") for e in decided}
    assert outcomes == {"committed"}
    survivors = survivor_outcomes(system, state)
    assert set(survivors.values()) == {Outcome.COMMITTED}


def test_nb_subordinate_crash_mid_protocol_rest_decide():
    system = build()
    state = start_txn(system, ProtocolKind.NON_BLOCKING)
    system.failures.crash_at(160.0, "b")
    system.run_for(60_000.0)
    # a and c must agree (Qc=2 is reachable without b).
    tid = state["tid"]
    outcomes = {system.tranman(s).tombstones.get(tid) for s in ("a", "c")}
    assert len(outcomes) == 1 and outcomes != {None}

def test_2pc_subordinate_crash_in_delayed_commit_window_recovers_commit():
    """Delayed commit's exposure: b gets the commit notice ~150ms, does
    its local commit, but writes the commit record *lazily*.  Crash in
    that window — locally committed, record not yet durable — and
    recovery must re-learn COMMITTED from the coordinator by inquiry,
    never by a heuristic guess."""
    system = build()
    state = start_txn(system, ProtocolKind.TWO_PHASE)
    system.run_for(168.0)
    # Prove we are inside the window: prepare durable, commit buffered.
    wal = system.runtime("b").diskman.wal
    durable = [r.kind.name for r in wal.durable_records()]
    assert "PREPARE" in durable and "COMMIT" not in durable
    assert "COMMIT" in [r.kind.name for r in wal.buffered_records()]
    system.failures.crash("b")
    system.failures.restart_at(5_000.0, "b")
    system.run_for(60_000.0)
    assert state.get("outcome") is Outcome.COMMITTED
    tid = state["tid"]
    assert system.tranman("b").tombstones.get(tid) is Outcome.COMMITTED
    assert system.server("server0@b").peek("x") == 9
    assert not locks_held(system, "b")
    assert system.tracer.count("2pc.heuristic_resolve") == 0
    assert system.tracer.count("2pc.heuristic_damage") == 0
