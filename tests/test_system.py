"""Unit tests for the system assembly layer."""

import pytest

from repro import CamelotSystem, SystemConfig
from repro.sim.process import Sleep


def test_sites_and_servers_built_from_config():
    system = CamelotSystem(SystemConfig(sites={"a": 2, "b": 1}))
    assert system.site_names() == ["a", "b"]
    assert sorted(system.runtime("a").servers) == \
        ["server0@a", "server1@a"]
    assert system.default_services() == ["server0@a", "server0@b"]


def test_server_lookup_by_service_name():
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))
    server = system.server("server0@b")
    assert server.name == "server0@b"
    assert server.site.name == "b"


def test_initial_objects_installed():
    system = CamelotSystem(SystemConfig(sites={"a": 1}),
                           initial_objects={"server0@a": {"x": 42}})
    assert system.server("server0@a").peek("x") == 42


def test_run_for_advances_clock():
    system = CamelotSystem(SystemConfig(sites={"a": 1}))
    system.run_for(123.0)
    assert system.kernel.now == 123.0


def test_run_process_returns_value_and_times_out():
    system = CamelotSystem(SystemConfig(sites={"a": 1}))

    def quick():
        yield Sleep(5.0)
        return "done"

    assert system.run_process(quick()) == "done"

    def forever():
        while True:
            yield Sleep(1_000.0)

    with pytest.raises(TimeoutError):
        system.run_process(forever(), timeout_ms=2_000.0)


def test_identical_seeds_identical_runs():
    def latency(seed):
        system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1},
                                            seed=seed))
        app = system.application("a")

        def workload():
            tid = yield from app.begin()
            yield from app.write(tid, "server0@b", "x", 1)
            yield from app.commit(tid)

        system.run_process(workload())
        return app.latencies_ms()[0]

    assert latency(7) == latency(7)
    assert latency(7) != latency(8)


def test_directory_reregistered_after_restart():
    system = CamelotSystem(SystemConfig(sites={"a": 1}))
    old = system.directory.lookup("server0@a")[1]
    system.crash_site("a")
    system.restart_site("a")
    new = system.directory.lookup("server0@a")[1]
    assert new is not old
    assert not new.dead


def test_tranman_accessor():
    system = CamelotSystem(SystemConfig(sites={"a": 1}))
    assert system.tranman("a") is system.runtime("a").tranman


def test_config_threads_and_flags_propagate():
    system = CamelotSystem(SystemConfig(sites={"a": 1}, tranman_threads=3,
                                        group_commit=True,
                                        use_multicast=True))
    assert system.tranman("a").pool.size == 3
    assert system.runtime("a").diskman.batcher.enabled
    assert system.tranman("a").use_multicast
