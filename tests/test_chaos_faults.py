"""Chaos fault modes added with the Paxos Commit family: crash-restart
composites, message duplication, the leader-failover sweep, and the
paxos scenario wiring itself."""

import json

import pytest

from repro.chaos.scenario import PROTOCOLS, ScenarioSpec, run_schedule
from repro.chaos.schedule import (
    DEFAULT_RESTART_DELAY_MS,
    EXTRA_KINDS,
    KINDS,
    FaultEvent,
    FaultSchedule,
    leader_failover_schedules,
)


# ------------------------------------------------------- event mechanics


def test_random_kind_contract_is_frozen():
    """KINDS is part of the random_schedule seed contract: appending to
    it would silently re-map every historical seed.  New fault modes go
    to EXTRA_KINDS (directed schedules only)."""
    assert KINDS == ("crash", "restart", "partition", "heal", "loss")
    assert set(EXTRA_KINDS) == {"crash_restart", "duplicate"}


def test_crash_restart_event_validation_and_timing():
    with pytest.raises(ValueError):
        FaultEvent(1.0, "crash_restart")            # needs a site
    event = FaultEvent(100.0, "crash_restart", site="a")
    assert event.restart_time == 100.0 + DEFAULT_RESTART_DELAY_MS
    custom = FaultEvent(100.0, "crash_restart", site="a", delay=250.0)
    assert custom.restart_time == 350.0
    # Plain events restart (for horizon purposes) at their own time.
    assert FaultEvent(70.0, "heal").restart_time == 70.0


def test_duplicate_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(1.0, "duplicate")                # needs a probability
    event = FaultEvent(1.0, "duplicate", probability=0.3)
    assert event.probability == 0.3


def test_schedule_horizon_covers_the_restart():
    sched = FaultSchedule(events=(
        FaultEvent(100.0, "crash_restart", site="a", delay=9_000.0),
        FaultEvent(400.0, "heal"),
    ))
    assert sched.horizon() == 9_100.0


def test_new_kinds_json_round_trip():
    sched = FaultSchedule(events=(
        FaultEvent(60.0, "duplicate", probability=0.25),
        FaultEvent(130.0, "crash_restart", site="b", delay=4_000.0),
    ), label="rt")
    blob = json.dumps(sched.to_json(), sort_keys=True)
    back = FaultSchedule.from_json(json.loads(blob))
    assert back == sched
    assert json.dumps(back.to_json(), sort_keys=True) == blob


def test_leader_failover_sweep_shape():
    scheds = leader_failover_schedules(("a", "b", "c"), "a")
    # Per crash instant: crash-dead, crash-restart, duplicate+restart.
    assert len(scheds) == 15
    for sched in scheds:
        assert sched.label.startswith("failover/")
        assert all(e.site in (None, "a") for e in sched.events)
    kinds = [tuple(e.kind for e in s.events) for s in scheds[:3]]
    assert ("crash",) in kinds
    assert ("crash_restart",) in kinds
    assert ("duplicate", "crash_restart") in kinds


# ----------------------------------------------------- paxos scenario runs


def test_paxos_protocol_is_registered():
    assert "paxos" in PROTOCOLS


def test_paxos_fault_free_run_is_clean_and_deterministic():
    spec = ScenarioSpec(protocol="paxos")
    empty = FaultSchedule(label="fault-free")
    first = run_schedule(spec, empty)
    second = run_schedule(spec, empty)
    assert first.ok, [v.describe() for v in first.violations]
    assert first.signature == second.signature
    assert set(first.tombstones.values()) == {"committed"}


def test_paxos_survives_permanent_leader_crash():
    """The F-fault-tolerance claim at its sharpest: leader a dies
    mid-protocol and never returns, yet both survivors decide."""
    spec = ScenarioSpec(protocol="paxos")
    result = run_schedule(spec, FaultSchedule(
        events=(FaultEvent(140.0, "crash", site="a"),),
        label="leader-dead"))
    assert result.ok, [v.describe() for v in result.violations]
    assert result.tombstones.get("b") is not None
    assert result.tombstones.get("c") is not None


def test_crash_restart_composite_resolves_for_all_families():
    sched = FaultSchedule(events=(
        FaultEvent(130.0, "crash_restart", site="a", delay=5_000.0),
    ), label="bounce")
    for protocol in sorted(PROTOCOLS):
        result = run_schedule(ScenarioSpec(protocol=protocol), sched)
        assert result.ok, (protocol,
                           [v.describe() for v in result.violations])


def test_duplication_is_safe_for_all_families():
    """Satellite claim: every family's handlers are duplicate-safe.
    With 40% of datagrams doubled the fault-free run must still commit
    everywhere, with no oracle violations."""
    sched = FaultSchedule(events=(
        FaultEvent(1.0, "duplicate", probability=0.4),
    ), label="dup40")
    for protocol in sorted(PROTOCOLS):
        result = run_schedule(ScenarioSpec(protocol=protocol), sched)
        assert result.ok, (protocol,
                           [v.describe() for v in result.violations])
        assert set(result.tombstones.values()) == {"committed"}, protocol


def test_duplication_runs_are_deterministic():
    sched = FaultSchedule(events=(
        FaultEvent(1.0, "duplicate", probability=0.4),
    ), label="dup-det")
    spec = ScenarioSpec(protocol="paxos")
    assert run_schedule(spec, sched).signature == \
        run_schedule(spec, sched).signature
