"""Critical-path extraction on synthetic span sets.

Every test asserts the balance invariant the CI smoke job relies on:
``attributed + gaps == wall`` exactly (to float tolerance).
"""

import pytest

from repro.obs.critical_path import extract, extract_for_tid
from repro.obs.spans import Span, SpanRecorder

TID = "T1@a"


def _span(sid, kind, site, t0, t1, tid=TID, **detail):
    return Span(sid, kind, site, t0, t1, tid, detail)


def _check_balance(path):
    assert path.attributed_ms + path.gap_ms == pytest.approx(path.wall_ms)


def test_sequential_chain_fills_window():
    spans = [
        _span(1, "lock.get", "a", 0.0, 0.5),
        _span(2, "log.force", "a", 0.5, 15.5),
        _span(3, "ipc.inline", "a", 15.5, 17.0),
    ]
    path = extract(spans, TID, 0.0, 17.0)
    _check_balance(path)
    assert path.gap_ms == pytest.approx(0.0)
    assert [link.span.sid for link in path.links] == [1, 2, 3]
    assert path.buckets()["log_force"] == pytest.approx(15.0)


def test_uncovered_time_becomes_gap():
    spans = [
        _span(1, "log.force", "a", 2.0, 4.0),
        _span(2, "ipc.inline", "a", 6.0, 10.0),
    ]
    path = extract(spans, TID, 0.0, 10.0)
    _check_balance(path)
    # [0,2] before the first span and [4,6] between them are gaps.
    assert path.gap_ms == pytest.approx(4.0)
    assert path.attributed_ms == pytest.approx(6.0)


def test_parent_does_not_double_count_nested_child():
    spans = [
        _span(1, "cpu.service", "a", 0.0, 10.0),
        _span(2, "log.force", "a", 3.0, 5.0),
    ]
    path = extract(spans, TID, 0.0, 10.0)
    _check_balance(path)
    buckets = path.buckets()
    assert buckets["cpu"] == pytest.approx(8.0)   # 10 minus the child
    assert buckets["log_force"] == pytest.approx(2.0)
    # The split parent still counts as ONE cpu occurrence.
    assert path.counts() == {"cpu": 1, "log_force": 1}


def test_overlapping_spans_split_without_double_counting():
    # The shorter contained span carves its interval out of the longer
    # one; together they cover the window exactly once.
    spans = [
        _span(1, "log.force", "a", 0.0, 15.0),
        _span(2, "net.datagram", "a", 0.0, 10.0, dst="b"),
    ]
    path = extract(spans, TID, 0.0, 15.0)
    _check_balance(path)
    assert path.gap_ms == pytest.approx(0.0)
    assert path.buckets()["datagram"] == pytest.approx(10.0)
    assert path.buckets()["log_force"] == pytest.approx(5.0)
    assert path.counts() == {"datagram": 1, "log_force": 1}


def test_envelope_and_open_spans_excluded():
    spans = [
        _span(1, "txn", "a", 0.0, 10.0),
        _span(2, "cpu.service", "a", 0.0, None),
        _span(3, "log.force", "a", 0.0, 10.0),
    ]
    path = extract(spans, TID, 0.0, 10.0)
    _check_balance(path)
    assert {link.span.sid for link in path.links} == {3}


def test_other_tids_ignored():
    spans = [
        _span(1, "log.force", "a", 0.0, 10.0, tid="T2@a"),
    ]
    path = extract(spans, TID, 0.0, 10.0)
    _check_balance(path)
    assert path.links == [] and path.gap_ms == pytest.approx(10.0)


def test_static_comparable_includes_cpu_excludes_gaps():
    spans = [
        _span(1, "cpu.service", "a", 0.0, 2.0),
        _span(2, "log.force", "a", 2.0, 17.0),
    ]
    path = extract(spans, TID, 0.0, 20.0)
    _check_balance(path)
    assert path.static_comparable_ms() == pytest.approx(17.0)
    assert path.gap_ms == pytest.approx(3.0)


def test_extract_for_tid_uses_envelope_bounds():
    rec = SpanRecorder()
    rec.add(5.0, 30.0, "txn", site="a", tid=TID)
    rec.add(10.0, 25.0, "log.force", site="a", tid=TID)
    path = extract_for_tid(rec, TID)
    assert path is not None
    assert (path.t_start, path.t_end) == (5.0, 30.0)
    _check_balance(path)
    assert path.attributed_ms == pytest.approx(15.0)


def test_extract_for_tid_commit_envelope():
    rec = SpanRecorder()
    rec.add(0.0, 30.0, "txn", site="a", tid=TID)
    rec.add(20.0, 30.0, "txn.commit", site="a", tid=TID)
    rec.add(21.0, 29.0, "log.force", site="a", tid=TID)
    path = extract_for_tid(rec, TID, envelope="txn.commit")
    assert (path.t_start, path.t_end) == (20.0, 30.0)


def test_extract_for_tid_none_without_envelope():
    rec = SpanRecorder()
    rec.add(0.0, 1.0, "log.force", site="a", tid=TID)
    assert extract_for_tid(rec, TID) is None
