"""Sans-IO unit tests for the two-phase commit state machines."""

import pytest

from repro.core.messages import (
    AbortNotice,
    CommitAck,
    CommitNotice,
    InquiryResponse,
    PrepareRequest,
    TxnInquiry,
    VoteResponse,
)
from repro.core.outcomes import Outcome, TwoPhaseVariant, Vote
from repro.core.tid import TID
from repro.core.twophase import (
    ProtocolViolation,
    SubordinateState,
    TwoPhaseCoordinator,
    TwoPhaseSubordinate,
    ACK_TIMER,
    OUTCOME_TIMER,
    VOTE_TIMER,
)

from tests.machine_harness import MachineHost

TID1 = TID("T1@a")


def coordinator(subs=("b",), variant=TwoPhaseVariant.OPTIMIZED, **kw):
    return MachineHost(TwoPhaseCoordinator(TID1, "a", list(subs),
                                           variant=variant, **kw)).start()


def subordinate(variant=TwoPhaseVariant.OPTIMIZED, **kw):
    return MachineHost(TwoPhaseSubordinate(TID1, "b", "a", variant=variant,
                                           **kw)).start()


# ------------------------------------------------------- happy path


def test_coordinator_happy_path_update():
    host = coordinator()
    assert host.sent_kinds() == ["PrepareRequest"]
    assert len(host.local_prepares) == 1
    host.local_prepared(Vote.YES)
    host.deliver(VoteResponse(tid=TID1, sender="b", vote=Vote.YES))
    # All votes in: coordinator forces its commit record...
    assert host.forced_kinds() == ["coord_commit"]
    assert host.completions == []  # not until the force completes
    host.complete_force()
    # ...then commits: notice to the update sub, local locks dropped,
    # the call completed — all before any ack.
    assert host.sent_kinds() == ["PrepareRequest", "CommitNotice"]
    assert host.local_commits == [TID1]
    assert host.completions == [Outcome.COMMITTED]
    assert host.forgotten == []
    # The ack lets the coordinator finally forget (lazy end record).
    host.deliver(CommitAck(tid=TID1, sender="b"))
    assert host.written_kinds() == ["end"]
    assert host.forgotten == [TID1]


def test_subordinate_happy_path_optimized():
    host = subordinate()
    assert len(host.local_prepares) == 1
    host.local_prepared(Vote.YES)
    assert host.forced_kinds() == ["prepare"]
    assert host.sent == []  # vote only after the prepare force
    host.complete_force()
    assert host.sent_kinds() == ["VoteResponse"]
    assert OUTCOME_TIMER in host.timers
    host.deliver(CommitNotice(tid=TID1, sender="a"))
    # Optimization: locks dropped first, commit record lazy...
    assert host.local_commits == [TID1]
    assert host.written_kinds() == ["commit"]
    assert host.sent_kinds() == ["VoteResponse"]  # no ack yet!
    # ...and the ack goes out (piggybacked) once the record is durable.
    host.complete_durable()
    assert host.lazy_sent and isinstance(host.lazy_sent[0][1], CommitAck)
    assert host.forgotten == [TID1]


def test_subordinate_unoptimized_orders_force_before_locks():
    host = subordinate(variant=TwoPhaseVariant.UNOPTIMIZED)
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.deliver(CommitNotice(tid=TID1, sender="a"))
    # Commit record forced, locks still held.
    assert host.forced_kinds() == ["prepare", "commit"]
    assert host.local_commits == []
    host.complete_force()
    # Now locks drop and the ack is immediate (its own datagram).
    assert host.local_commits == [TID1]
    assert any(isinstance(m, CommitAck) for _, m in host.sent)
    assert host.lazy_sent == []


def test_subordinate_semi_optimized_forces_but_delays_ack():
    host = subordinate(variant=TwoPhaseVariant.SEMI_OPTIMIZED)
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.deliver(CommitNotice(tid=TID1, sender="a"))
    assert host.local_commits == [TID1]  # locks drop early
    assert host.forced_kinds() == ["prepare", "commit"]  # but forced
    host.complete_force()
    assert host.lazy_sent and isinstance(host.lazy_sent[0][1], CommitAck)


def test_variant_properties():
    assert not TwoPhaseVariant.OPTIMIZED.forces_commit_record
    assert TwoPhaseVariant.SEMI_OPTIMIZED.forces_commit_record
    assert TwoPhaseVariant.SEMI_OPTIMIZED.piggybacks_ack
    assert not TwoPhaseVariant.UNOPTIMIZED.piggybacks_ack


# ------------------------------------------------------- read-only


def test_read_only_subordinate_writes_nothing():
    host = subordinate()
    host.local_prepared(Vote.READ_ONLY)
    assert host.forced == [] and host.written == []
    assert host.local_commits == [TID1]  # read locks dropped at once
    vote = host.sent[0][1]
    assert vote.vote is Vote.READ_ONLY
    assert host.forgotten == [TID1]


def test_fully_read_only_transaction_commits_with_no_log_writes():
    host = coordinator()
    host.local_prepared(Vote.READ_ONLY)
    host.deliver(VoteResponse(tid=TID1, sender="b", vote=Vote.READ_ONLY))
    assert host.forced == [] and host.written == []
    assert host.completions == [Outcome.COMMITTED]
    assert host.forgotten == [TID1]
    # No phase two at all.
    assert host.sent_kinds() == ["PrepareRequest"]


def test_read_only_sub_omitted_from_phase_two():
    host = coordinator(subs=("b", "c"))
    host.local_prepared(Vote.YES)
    host.deliver(VoteResponse(tid=TID1, sender="b", vote=Vote.READ_ONLY))
    host.deliver(VoteResponse(tid=TID1, sender="c", vote=Vote.YES))
    host.complete_force()
    notices = [d for d, m in host.sent if isinstance(m, CommitNotice)]
    assert notices == ["c"]


def test_local_only_update_single_force():
    host = coordinator(subs=())
    host.local_prepared(Vote.YES)
    assert host.forced_kinds() == ["coord_commit"]
    host.complete_force()
    assert host.completions == [Outcome.COMMITTED]
    assert host.forgotten == [TID1]


# ----------------------------------------------------------- aborts


def test_no_vote_aborts_lazily_and_forgets_at_once():
    host = coordinator(subs=("b", "c"))
    host.local_prepared(Vote.YES)
    host.deliver(VoteResponse(tid=TID1, sender="b", vote=Vote.NO))
    # Presumed abort: lazy record, no acks expected, forget immediately.
    assert host.forced == []
    assert host.written_kinds() == ["abort"]
    assert host.completions == [Outcome.ABORTED]
    assert host.forgotten == [TID1]
    # Abort notice goes to the undecided sub, not the NO voter.
    targets = [d for d, m in host.sent if isinstance(m, AbortNotice)]
    assert targets == ["c"]


def test_local_no_vote_aborts():
    host = coordinator()
    host.local_prepared(Vote.NO)
    assert host.completions == [Outcome.ABORTED]


def test_vote_timeout_retries_then_aborts():
    host = coordinator(max_prepare_retries=2)
    host.local_prepared(Vote.YES)
    host.fire_timer(VOTE_TIMER)
    host.fire_timer(VOTE_TIMER)
    assert host.sent_kinds().count("PrepareRequest") == 3
    host.fire_timer(VOTE_TIMER)
    assert host.completions == [Outcome.ABORTED]


def test_subordinate_no_vote():
    host = subordinate()
    host.local_prepared(Vote.NO)
    assert host.sent[0][1].vote is Vote.NO
    assert host.local_aborts == [TID1]
    assert host.written_kinds() == ["abort"]
    assert host.forgotten == [TID1]


def test_subordinate_abort_notice_in_prepared_state():
    host = subordinate()
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.deliver(AbortNotice(tid=TID1, sender="a"))
    assert host.local_aborts == [TID1]
    assert host.written_kinds() == ["abort"]
    assert host.machine.outcome is Outcome.ABORTED


def test_abort_after_commit_is_protocol_violation():
    host = subordinate()
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.deliver(CommitNotice(tid=TID1, sender="a"))
    with pytest.raises(ProtocolViolation):
        host.deliver(AbortNotice(tid=TID1, sender="a"))


def test_application_abort_now():
    host = coordinator()
    host.execute(host.machine.abort_now())
    assert host.completions == [Outcome.ABORTED]


# ------------------------------------------------ retries / duplicates


def test_duplicate_vote_ignored():
    host = coordinator(subs=("b", "c"))
    host.local_prepared(Vote.YES)
    host.deliver(VoteResponse(tid=TID1, sender="b", vote=Vote.YES))
    host.deliver(VoteResponse(tid=TID1, sender="b", vote=Vote.YES))
    assert host.forced == []  # still waiting for c


def test_vote_from_stranger_ignored():
    host = coordinator()
    host.local_prepared(Vote.YES)
    host.deliver(VoteResponse(tid=TID1, sender="zz", vote=Vote.YES))
    assert host.forced == []


def test_prepared_sub_resends_vote_on_duplicate_prepare():
    host = subordinate()
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.deliver(PrepareRequest(tid=TID1, sender="a"))
    assert host.sent_kinds() == ["VoteResponse", "VoteResponse"]


def test_ack_timeout_resends_commit_notice():
    host = coordinator()
    host.local_prepared(Vote.YES)
    host.deliver(VoteResponse(tid=TID1, sender="b", vote=Vote.YES))
    host.complete_force()
    host.fire_timer(ACK_TIMER)
    assert host.sent_kinds().count("CommitNotice") == 2


def test_committed_sub_reacks_duplicate_notice():
    host = subordinate(variant=TwoPhaseVariant.UNOPTIMIZED)
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.deliver(CommitNotice(tid=TID1, sender="a"))
    host.complete_force()
    host.deliver(CommitNotice(tid=TID1, sender="a"))
    acks = [m for _, m in host.sent if isinstance(m, CommitAck)]
    assert len(acks) == 2


def test_duplicate_ack_ignored():
    host = coordinator(subs=("b", "c"))
    host.local_prepared(Vote.YES)
    host.deliver(VoteResponse(tid=TID1, sender="b", vote=Vote.YES))
    host.deliver(VoteResponse(tid=TID1, sender="c", vote=Vote.YES))
    host.complete_force()
    host.deliver(CommitAck(tid=TID1, sender="b"))
    host.deliver(CommitAck(tid=TID1, sender="b"))
    assert host.forgotten == []  # still missing c


# --------------------------------------------------- blocking window


def test_blocked_subordinate_inquires_until_answered():
    host = subordinate()
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.fire_timer(OUTCOME_TIMER)
    host.fire_timer(OUTCOME_TIMER)
    inquiries = [m for _, m in host.sent if isinstance(m, TxnInquiry)]
    assert len(inquiries) == 2
    assert host.machine.state is SubordinateState.PREPARED
    host.deliver(InquiryResponse(tid=TID1, sender="a",
                                 outcome=Outcome.ABORTED))
    assert host.machine.outcome is Outcome.ABORTED


def test_inquiry_response_committed_commits():
    host = subordinate()
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.deliver(InquiryResponse(tid=TID1, sender="a",
                                 outcome=Outcome.COMMITTED))
    assert host.machine.outcome is Outcome.COMMITTED


def test_coordinator_answers_inquiry_with_outcome():
    host = coordinator()
    host.local_prepared(Vote.YES)
    host.deliver(VoteResponse(tid=TID1, sender="b", vote=Vote.YES))
    host.complete_force()
    host.deliver(TxnInquiry(tid=TID1, sender="b"))
    answers = [m for _, m in host.sent if isinstance(m, InquiryResponse)]
    assert answers and answers[0].outcome is Outcome.COMMITTED


def test_undecided_coordinator_stays_silent_on_inquiry():
    host = coordinator()
    host.local_prepared(Vote.YES)
    host.deliver(TxnInquiry(tid=TID1, sender="b"))
    assert not any(isinstance(m, InquiryResponse) for _, m in host.sent)


# ----------------------------------------------------------- recovery


def test_recovered_coordinator_resumes_notification():
    machine = TwoPhaseCoordinator.recovered(TID1, "a", ["b", "c"])
    host = MachineHost(machine)
    host.execute(machine.resume_notifications())
    assert host.sent_kinds() == ["CommitNotice", "CommitNotice"]
    host.deliver(CommitAck(tid=TID1, sender="b"))
    host.deliver(CommitAck(tid=TID1, sender="c"))
    assert host.forgotten == [TID1]
    assert host.written_kinds() == ["end"]


def test_recovered_subordinate_resumes_inquiry():
    machine = TwoPhaseSubordinate.recovered(TID1, "b", "a")
    host = MachineHost(machine)
    host.execute(machine.resume_inquiry())
    assert host.sent_kinds() == ["TxnInquiry"]
    assert machine.state is SubordinateState.PREPARED


def test_multicast_prepare_and_commit():
    host = MachineHost(TwoPhaseCoordinator(TID1, "a", ["b", "c", "d"],
                                           use_multicast=True)).start()
    host.local_prepared(Vote.YES)
    for s in ("b", "c", "d"):
        host.deliver(VoteResponse(tid=TID1, sender=s, vote=Vote.YES))
    host.complete_force()
    # The harness expands multicast to per-destination entries.
    assert host.sent_kinds().count("PrepareRequest") == 3
    assert host.sent_kinds().count("CommitNotice") == 3
