"""Duplicate-delivery safety across all three protocol families.

The chaos ``duplicate`` fault mode replays arbitrary datagrams a
network hop later, so every handler must be idempotent: a duplicate may
re-send a (deterministic) reply but must never force a second record,
re-apply an outcome, double-count a vote or ack, or flip machine state.
Paxos Commit's duplicate cases live in test_paxoscommit_unit.py; these
cover the two-phase and non-blocking families the same mode runs
against.
"""

from repro.core.messages import (
    CommitAck,
    CommitNotice,
    NbOutcome,
    NbOutcomeAck,
    NbReplicate,
    NbReplicateAck,
    NbVote,
    PrepareRequest,
    VoteResponse,
)
from repro.core.nonblocking import (
    NbCoordinator,
    NbSubordinate,
)
from repro.core.outcomes import Outcome, TwoPhaseVariant, Vote
from repro.core.quorum import QuorumSpec
from repro.core.tid import TID
from repro.core.twophase import (
    TwoPhaseCoordinator,
    TwoPhaseSubordinate,
)

from tests.machine_harness import MachineHost

TID1 = TID("T1@a")
SITES3 = ["a", "b", "c"]
Q3 = QuorumSpec.majority(3)


# ------------------------------------------------------------- two-phase


def test_2pc_coordinator_duplicate_vote_forces_once():
    host = MachineHost(TwoPhaseCoordinator(
        TID1, "a", ["b"], variant=TwoPhaseVariant.OPTIMIZED)).start()
    host.local_prepared(Vote.YES)
    vote = VoteResponse(tid=TID1, sender="b", vote=Vote.YES)
    host.deliver(vote)
    host.deliver(vote)                                   # wire duplicate
    assert host.forced_kinds() == ["coord_commit"]       # exactly one
    host.complete_force()
    notices = [m for _, m in host.sent if isinstance(m, CommitNotice)]
    assert len(notices) == 1
    assert host.completions == [Outcome.COMMITTED]


def test_2pc_coordinator_duplicate_ack_writes_one_end_record():
    host = MachineHost(TwoPhaseCoordinator(
        TID1, "a", ["b"], variant=TwoPhaseVariant.OPTIMIZED)).start()
    host.local_prepared(Vote.YES)
    host.deliver(VoteResponse(tid=TID1, sender="b", vote=Vote.YES))
    host.complete_force()
    host.deliver(CommitAck(tid=TID1, sender="b"))
    host.deliver(CommitAck(tid=TID1, sender="b"))
    assert host.written_kinds() == ["end"]
    assert host.forgotten == [TID1]


def test_2pc_subordinate_duplicate_prepare_revotes_without_force():
    host = MachineHost(TwoPhaseSubordinate(
        TID1, "b", "a", variant=TwoPhaseVariant.OPTIMIZED)).start()
    host.local_prepared(Vote.YES)
    host.complete_force()
    assert host.sent_kinds() == ["VoteResponse"]
    host.deliver(PrepareRequest(tid=TID1, sender="a"))
    # The re-vote comes from durable state: no second prepare force.
    assert host.sent_kinds() == ["VoteResponse", "VoteResponse"]
    assert len(host.forced) == 1
    assert len(host.local_prepares) == 1


def test_2pc_subordinate_duplicate_commit_notice_applies_once():
    host = MachineHost(TwoPhaseSubordinate(
        TID1, "b", "a", variant=TwoPhaseVariant.OPTIMIZED)).start()
    host.local_prepared(Vote.YES)
    host.complete_force()
    notice = CommitNotice(tid=TID1, sender="a")
    host.deliver(notice)
    host.deliver(notice)
    assert host.local_commits == [TID1]                  # applied once
    assert host.written_kinds() == ["commit"]            # one lazy record


# ----------------------------------------------------------- non-blocking


def _nb_coordinator_to_replicating():
    host = MachineHost(NbCoordinator(TID1, "a", ["b", "c"])).start()
    host.local_prepared(Vote.YES)
    host.complete_force()                                # prepare
    host.deliver(NbVote(tid=TID1, sender="b", vote=Vote.YES))
    host.deliver(NbVote(tid=TID1, sender="c", vote=Vote.YES))
    host.complete_force()                                # replication
    return host


def test_nb_coordinator_duplicate_vote_replicates_once():
    host = MachineHost(NbCoordinator(TID1, "a", ["b", "c"])).start()
    host.local_prepared(Vote.YES)
    host.complete_force()
    vote = NbVote(tid=TID1, sender="b", vote=Vote.YES)
    host.deliver(vote)
    host.deliver(vote)                                   # duplicate
    host.deliver(NbVote(tid=TID1, sender="c", vote=Vote.YES))
    # The duplicate must not have tipped the tally early or doubled the
    # replication force.
    assert host.forced_kinds() == ["prepare", "replication"]


def test_nb_coordinator_duplicate_replicate_ack_counts_once():
    host = _nb_coordinator_to_replicating()
    ack = NbReplicateAck(tid=TID1, sender="b", ok=True)
    host.deliver(ack)
    assert host.completions == [Outcome.COMMITTED]
    commits = len(host.local_commits)
    host.deliver(ack)                                    # duplicate
    assert host.completions == [Outcome.COMMITTED]
    assert len(host.local_commits) == commits


def test_nb_coordinator_duplicate_outcome_ack_ends_once():
    host = _nb_coordinator_to_replicating()
    host.deliver(NbReplicateAck(tid=TID1, sender="b", ok=True))
    host.deliver(NbOutcomeAck(tid=TID1, sender="b"))
    host.deliver(NbOutcomeAck(tid=TID1, sender="c"))
    host.deliver(NbOutcomeAck(tid=TID1, sender="c"))     # duplicate
    assert host.forgotten == [TID1]
    assert host.written_kinds().count("end") == 1


def _decision_data():
    return {
        "tid": str(TID1), "coordinator": "a", "sites": SITES3,
        "quorum": Q3.to_dict(),
        "votes": {"a": "yes", "b": "yes", "c": "yes"},
        "replication_targets": SITES3,
    }


def test_nb_subordinate_duplicate_replicate_forces_once():
    host = MachineHost(NbSubordinate(TID1, "b", "a", SITES3, Q3)).start()
    host.local_prepared(Vote.YES)
    host.complete_force()
    replicate = NbReplicate(tid=TID1, sender="a",
                            decision_data=_decision_data())
    host.deliver(replicate)
    host.complete_force()
    forces = len(host.forced)
    host.deliver(replicate)                              # duplicate
    # Already durable: re-ack from state, no second replication force.
    assert len(host.forced) == forces
    acks = [m for _, m in host.sent if isinstance(m, NbReplicateAck)]
    assert len(acks) == 2 and all(a.ok for a in acks)


def test_nb_subordinate_duplicate_outcome_applies_once():
    host = MachineHost(NbSubordinate(TID1, "b", "a", SITES3, Q3)).start()
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.deliver(NbReplicate(tid=TID1, sender="a",
                             decision_data=_decision_data()))
    host.complete_force()
    outcome = NbOutcome(tid=TID1, sender="a", outcome=Outcome.COMMITTED)
    host.deliver(outcome)
    assert host.local_commits == [TID1]
    host.deliver(outcome)                                # duplicate
    assert host.local_commits == [TID1]
    assert host.written_kinds().count("commit") == 1
