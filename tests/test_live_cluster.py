"""Multi-process cluster tests: real ``kill -9``, real restarts, real
WAL recovery.

These drive the same scripted demos the CI ``live-smoke`` job runs —
each site is its own OS process speaking the frame codec over loopback
TCP, crash windows are pinned with ``--hold`` tokens, and recovery at
restart reads the actual on-disk WAL through the simulator's own
:func:`repro.servers.recovery.analyze` discriminators.  Slowest tests
in the repo by design; each stays well inside the 60 s smoke budget."""

import os

from repro.live.cluster import (
    control,
    demo_happy_path,
    demo_paxos_leader_kill,
    demo_two_phase_subordinate_kill,
    spawn_site,
    stop_site,
    wait_until,
)
from repro.live.walfile import read_records


def _quiet(_msg: str) -> None:
    pass


class TestHappyPath:
    def test_one_commit_per_family_across_processes(self, tmp_path):
        tids = demo_happy_path(str(tmp_path), log=_quiet)
        assert len(tids) == 3
        assert {t.split("@")[1] for t in tids} == {"alpha", "beta", "gamma"}
        # Every site left a non-trivial WAL on disk.
        for s in ("alpha", "beta", "gamma"):
            assert read_records(str(tmp_path / f"{s}.wal"))


class TestSubordinateKill9:
    def test_two_phase_subordinate_killed_mid_prepare(self, tmp_path):
        outcomes = demo_two_phase_subordinate_kill(str(tmp_path), log=_quiet)
        assert outcomes["alpha"] == "aborted"
        assert outcomes["gamma"] == "aborted"
        # The killed site's WAL holds the durable prepare that made the
        # transaction in-doubt — proof the hold window did its job.
        kinds = [r.kind.name for r in
                 read_records(str(tmp_path / "gamma.wal"))]
        assert "PREPARE" in kinds
        assert "ABORT" in kinds  # written during recovery resolution


class TestLeaderKill9:
    def test_paxos_leader_killed_after_durable_decision(self, tmp_path):
        outcomes = demo_paxos_leader_kill(str(tmp_path), log=_quiet)
        assert outcomes == {"alpha": "committed", "beta": "committed",
                            "gamma": "committed"}


class TestRestartDiscovery:
    def test_restarted_site_found_on_fresh_ephemeral_port(self, tmp_path):
        """Port hygiene end to end: kill a site, restart it (new
        ephemeral port), and a peer's next send still reaches it via the
        re-read port file."""
        run_dir = str(tmp_path)
        alpha = spawn_site(run_dir, "alpha")
        try:
            first_port = control(run_dir, "alpha", {"cmd": "ping"})
            assert first_port["ok"]
            old = int(open(os.path.join(run_dir, "alpha.port")).read())
            stop_site(run_dir, "alpha", alpha)
            alpha = spawn_site(run_dir, "alpha")
            new = int(open(os.path.join(run_dir, "alpha.port")).read())
            # Ephemeral rebinding: same name, (almost surely) new port,
            # and control traffic follows the file, not the old socket.
            assert control(run_dir, "alpha", {"cmd": "ping"})["ok"]
            beta = spawn_site(run_dir, "beta")
            try:
                begun = control(run_dir, "beta",
                                {"cmd": "begin", "protocol": "2pc",
                                 "subs": ["alpha"]})
                tid = begun["tid"]
                wait_until(
                    lambda: (control(run_dir, "beta", {"cmd": "status"})
                             ["tombstones"].get(tid)) == "committed",
                    20.0, "commit across the restarted site")
            finally:
                stop_site(run_dir, "beta", beta)
            assert isinstance(old, int) and isinstance(new, int)
        finally:
            stop_site(run_dir, "alpha", alpha)
