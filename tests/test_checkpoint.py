"""Checkpointing and log truncation."""


from repro import CamelotSystem, Outcome, SystemConfig
from repro.log.records import RecordKind
from repro.log.storage import StableStore
from repro.servers.recovery import analyze


def commit_txn(system, app, obj, value, service="server0@a"):
    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, service, obj, value)
        outcome = yield from app.commit(tid)
        return outcome

    assert system.run_process(workload()) is Outcome.COMMITTED


def take_checkpoint(system, site="a"):
    rt = system.runtime(site)

    def body():
        reclaimed = yield from rt.diskman.checkpoint(
            rt.servers, tombstones=rt.tranman.tombstones)
        return reclaimed

    return system.run_process(body())


# ----------------------------------------------------------- storage


def test_truncate_before_reclaims_prefix():
    store = StableStore("a")
    from repro.log.records import commit_record

    for i in range(1, 6):
        rec = commit_record(f"T{i}@a", "a")
        rec.lsn = i
        store.append(rec)
    assert store.truncate_before(3) == 2
    assert store.first_lsn() == 3
    assert len(store) == 3


# ------------------------------------------------------- checkpointing


def test_checkpoint_reclaims_committed_history():
    system = CamelotSystem(SystemConfig(sites={"a": 1}))
    app = system.application("a")
    for i in range(5):
        commit_txn(system, app, f"k{i}", i)
    system.run_for(500.0)  # lazy records flushed
    store = system.stores.for_site("a")
    before = len(store)
    reclaimed = take_checkpoint(system)
    assert reclaimed > 0
    assert len(store) < before
    kinds = [r.kind for r in store.records()]
    assert RecordKind.CHECKPOINT in kinds


def test_checkpoint_preserves_active_transactions_history():
    """The log is only reclaimed up to the oldest active transaction's
    first record, so in-flight work survives the checkpoint."""
    system = CamelotSystem(SystemConfig(sites={"a": 1}))
    app = system.application("a")
    commit_txn(system, app, "old", 1)
    state = {}

    def open_txn():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "pending", 9)
        state["tid"] = tid

    system.run_process(open_txn())
    system.run_for(500.0)
    take_checkpoint(system)
    store = system.stores.for_site("a")
    update_tids = [r.tid for r in store.records()
                   if r.kind is RecordKind.UPDATE]
    assert str(state["tid"]) in update_tids  # active history retained

    # And the open transaction can still commit afterwards.
    def finish():
        outcome = yield from app.commit(state["tid"])
        return outcome

    assert system.run_process(finish()) is Outcome.COMMITTED


def test_committed_view_excludes_uncommitted_writes():
    system = CamelotSystem(SystemConfig(sites={"a": 1}),
                           initial_objects={"server0@a": {"x": 1}})
    app = system.application("a")

    def open_txn():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "x", 99)
        yield from app.write(tid, "server0@a", "fresh", 5)

    system.run_process(open_txn())
    view = system.server("server0@a").committed_view()
    assert view == {"x": 1}  # uncommitted x=99 and fresh=5 backed out


# ------------------------------------------- recovery from a checkpoint


def test_recovery_from_checkpoint_restores_values():
    system = CamelotSystem(SystemConfig(sites={"a": 1}))
    app = system.application("a")
    for i in range(4):
        commit_txn(system, app, f"k{i}", i * 10)
    system.run_for(500.0)
    take_checkpoint(system)
    # More work after the checkpoint.
    commit_txn(system, app, "post", 77)
    system.run_for(500.0)
    system.crash_site("a")
    system.restart_site("a")
    system.run_for(1_000.0)
    server = system.server("server0@a")
    for i in range(4):
        assert server.peek(f"k{i}") == i * 10  # from the checkpoint base
    assert server.peek("post") == 77           # from the redo pass


def test_recovery_checkpoint_plus_in_doubt():
    """A distributed transaction in flight across a checkpoint still
    resolves correctly after a crash."""
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))
    app = system.application("a")
    commit_txn(system, app, "base", 1, service="server0@b")
    system.run_for(500.0)
    take_checkpoint(system, site="b")

    state = {}

    def workload():
        tid = yield from app.begin()
        state["tid"] = str(tid)
        yield from app.write(tid, "server0@a", "x", 2)
        yield from app.write(tid, "server0@b", "x", 3)
        outcome = yield from app.commit(tid)
        state["outcome"] = outcome

    system.spawn(workload(), name="txn")
    # Crash b just after it votes (commit record still volatile).
    system.failures.crash_at(system.kernel.now + 118.0, "b")
    system.failures.restart_at(system.kernel.now + 4_000.0, "b")
    system.run_for(60_000.0)
    if state.get("outcome") is Outcome.COMMITTED:
        assert system.server("server0@b").peek("x") == 3
    assert system.server("server0@b").peek("base") == 1


def test_analyze_uses_last_checkpoint():
    from repro.log.records import checkpoint_record, commit_record

    records = []
    ck1 = checkpoint_record("a", {"s": {"x": 1}}, 0)
    ck2 = checkpoint_record("a", {"s": {"x": 2}}, 0)
    for i, rec in enumerate([ck1, ck2], start=1):
        rec.lsn = i
        records.append(rec)
    plan = analyze("a", records)
    assert plan.base_values == {"s": {"x": 2}}


def test_checkpoint_with_no_history_reclaims_nothing_new():
    system = CamelotSystem(SystemConfig(sites={"a": 1}))
    first = take_checkpoint(system)
    assert first == 0


def test_tombstones_survive_truncation_and_crash():
    """The safety hole checkpointing could open: truncation erases old
    commit records, so the checkpoint must carry the tombstones — a
    recovered site must never report 'no_state' for a decided
    transaction (an abort quorum could otherwise form against a
    committed one)."""
    system = CamelotSystem(SystemConfig(sites={"a": 1}))
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "x", 1)
        outcome = yield from app.commit(tid)
        return tid

    tid = system.run_process(workload())
    system.run_for(500.0)
    take_checkpoint(system)  # truncates the commit record
    commit_records = [r for r in system.stores.for_site("a").records()
                      if r.kind is RecordKind.COMMIT
                      or r.kind is RecordKind.COORD_COMMIT]
    assert commit_records == []  # really gone from the log
    system.crash_site("a")
    system.restart_site("a")
    assert system.tranman("a").tombstones.get(str(tid)) is Outcome.COMMITTED


def test_periodic_checkpointing_bounds_the_log():
    config = SystemConfig(sites={"a": 1}).with_cost(
        checkpoint_interval=1_000.0)
    system = CamelotSystem(config)
    app = system.application("a")
    for i in range(10):
        commit_txn(system, app, "hot", i)
        system.run_for(400.0)
    system.run_for(2_000.0)
    store = system.stores.for_site("a")
    assert system.tracer.count("diskman.checkpoint") >= 3
    # The log stays bounded instead of growing with history.
    assert len(store) < 15
    # And recovery still lands on the latest committed value.
    system.crash_site("a")
    system.restart_site("a")
    system.run_for(1_000.0)
    assert system.server("server0@a").peek("hot") == 9
