"""Deadlock handling: lock-wait timeouts, victims, read_for_update."""


from repro import CamelotSystem, Outcome, SystemConfig, TransactionAborted
from repro.core.tid import TID as TIDCls
from repro.servers.lockmgr import LockManager, LockMode


def fast_timeout_system(sites=None):
    config = SystemConfig(sites=sites or {"a": 1})
    config = config.with_cost(lock_wait_timeout=400.0)
    return CamelotSystem(config)


def test_cancel_wait_removes_queued_request():
    lm = LockManager()
    t1, t2 = TIDCls("T1@a"), TIDCls("T2@a")
    lm.acquire("x", t1, LockMode.WRITE)
    lm.acquire("x", t2, LockMode.WRITE, on_grant=lambda: None)
    assert lm.cancel_wait("x", t2)
    assert lm.waiting_on("x") == []
    assert not lm.cancel_wait("x", t2)  # idempotent


def test_cancel_wait_wakes_compatible_successors():
    lm = LockManager()
    t1, t2, t3 = (TIDCls(f"T{i}@a") for i in (1, 2, 3))
    lm.acquire("x", t1, LockMode.READ)
    lm.acquire("x", t2, LockMode.WRITE, on_grant=lambda: None)
    woken = []
    lm.acquire("x", t3, LockMode.READ, on_grant=lambda: woken.append(True))
    # Cancel the writer: the queued reader becomes compatible.
    lm.cancel_wait("x", t2)
    assert woken == [True]


def test_upgrade_deadlock_resolved_by_victim_abort():
    """Two read-then-upgrade transactions deadlock; the timeout picks a
    victim, the other commits."""
    system = fast_timeout_system()
    outcomes = []

    def upgrader(app):
        try:
            tid = yield from app.begin()
            yield from app.read(tid, "server0@a", "x")
            yield from app.write(tid, "server0@a", "x", 1)
            outcome = yield from app.commit(tid)
            outcomes.append(outcome)
        except TransactionAborted:
            outcomes.append(Outcome.ABORTED)

    for i in range(2):
        system.spawn(upgrader(system.application("a", name=f"u{i}")),
                     name=f"u{i}")
    system.run_for(20_000.0)
    assert sorted(o.value for o in outcomes) == ["aborted", "committed"]
    assert system.server("server0@a").locks.locked_objects() == []


def test_cycle_deadlock_resolved():
    """A -> x then y; B -> y then x: one becomes the victim."""
    system = fast_timeout_system()
    outcomes = []

    def worker(app, first, second):
        try:
            tid = yield from app.begin()
            yield from app.write(tid, "server0@a", first, 1)
            yield from app.write(tid, "server0@a", second, 1)
            outcome = yield from app.commit(tid)
            outcomes.append(outcome)
        except TransactionAborted:
            outcomes.append(Outcome.ABORTED)

    system.spawn(worker(system.application("a", name="A"), "x", "y"),
                 name="A")
    system.spawn(worker(system.application("a", name="B"), "y", "x"),
                 name="B")
    system.run_for(20_000.0)
    assert Outcome.ABORTED in outcomes
    assert Outcome.COMMITTED in outcomes
    assert system.tracer.count("server.lock_timeout") >= 1
    assert system.server("server0@a").locks.locked_objects() == []


def test_read_for_update_avoids_upgrade_deadlock():
    """Both transactions use read_for_update: pure serialization, both
    commit, no victims."""
    system = fast_timeout_system()
    outcomes = []

    def incrementer(app):
        tid = yield from app.begin()
        value = yield from app.read_for_update(tid, "server0@a", "n")
        yield from app.write(tid, "server0@a", "n", (value or 0) + 1)
        outcome = yield from app.commit(tid)
        outcomes.append(outcome)

    for i in range(3):
        system.spawn(incrementer(system.application("a", name=f"i{i}")),
                     name=f"i{i}")
    system.run_for(30_000.0)
    assert [o.value for o in outcomes] == ["committed"] * 3
    assert system.server("server0@a").peek("n") == 3
    assert system.tracer.count("server.lock_timeout") == 0


def test_victim_abort_undoes_partial_work():
    system = fast_timeout_system(sites={"a": 1, "b": 1})
    state = {}

    def blocker(app):
        tid = yield from app.begin()
        yield from app.write(tid, "server0@b", "y", 1)
        state["holder"] = tid
        # Hold y forever (never commits within the test window).
        from repro.sim.process import Sleep
        yield Sleep(60_000.0)

    def victim(app):
        from repro.sim.process import Sleep
        yield Sleep(50.0)
        try:
            tid = yield from app.begin()
            yield from app.write(tid, "server0@a", "x", 5)  # partial work
            yield from app.write(tid, "server0@b", "y", 5)  # will time out
            yield from app.commit(tid)
        except TransactionAborted:
            state["victim_aborted"] = True

    system.spawn(blocker(system.application("a", name="blocker")),
                 name="blocker")
    system.spawn(victim(system.application("a", name="victim")),
                 name="victim")
    system.run_for(20_000.0)
    assert state.get("victim_aborted")
    # The victim's partial write at site a was undone.
    assert system.server("server0@a").peek("x") is None


def test_orphan_sweep_reclaims_dead_coordinators_locks():
    """Coordinator site dies before commitment: participants' locks are
    reclaimed by the orphan sweep (presumed abort)."""
    config = SystemConfig(sites={"a": 1, "b": 1}).with_cost(
        orphan_timeout=2_000.0)
    system = CamelotSystem(config)
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@b", "x", 1)
        # Coordinator dies before ever calling commit.

    system.run_process(workload())
    system.crash_site("a")
    assert system.server("server0@b").locks.locked_objects() == ["x"]
    system.run_for(10_000.0)
    assert system.server("server0@b").locks.locked_objects() == []
    assert system.server("server0@b").peek("x") is None
    assert system.tracer.count("tranman.orphan_abort") >= 1
