"""Sans-IO unit tests for the non-blocking commitment protocol."""

import pytest

from repro.core.messages import (
    NbAbortJoin,
    NbAbortJoinAck,
    NbOutcome,
    NbOutcomeAck,
    NbPrepare,
    NbReplicate,
    NbReplicateAck,
    NbStateReport,
    NbStateRequest,
    NbVote,
)
from repro.core.nonblocking import (
    NB_OUTCOME_TIMER,
    NB_REPL_TIMER,
    NB_TAKEOVER_TIMER,
    NB_VOTE_TIMER,
    NbCoordinator,
    NbCoordinatorState,
    NbProtocolViolation,
    NbSubState,
    NbSubordinate,
    NbTakeover,
)
from repro.core.outcomes import Outcome, Vote
from repro.core.quorum import QuorumSpec
from repro.core.tid import TID

from tests.machine_harness import MachineHost

TID1 = TID("T1@a")
SITES3 = ["a", "b", "c"]
Q3 = QuorumSpec.majority(3)


def coordinator(subs=("b", "c"), **kw):
    return MachineHost(NbCoordinator(TID1, "a", list(subs), **kw)).start()


def subordinate(site="b", sites=None, quorum=None, **kw):
    return MachineHost(NbSubordinate(TID1, site, "a", sites or SITES3,
                                     quorum or Q3, **kw)).start()


def takeover(site="b", own_status="prepared", sites=None, quorum=None,
             decision=None, **kw):
    return MachineHost(NbTakeover(TID1, site, sites or SITES3,
                                  quorum or Q3, own_status=own_status,
                                  own_decision_data=decision, **kw)).start()


def decision_data():
    return {
        "tid": str(TID1), "coordinator": "a", "sites": SITES3,
        "quorum": Q3.to_dict(),
        "votes": {"a": "yes", "b": "yes", "c": "yes"},
        "replication_targets": SITES3,
    }


# ------------------------------------------------------- happy path


def test_coordinator_prepares_before_sending_prepares():
    """Change 5: local prepare + own prepare force precede the prepare
    message."""
    host = coordinator()
    assert len(host.local_prepares) == 1
    assert host.sent == []
    host.local_prepared(Vote.YES)
    assert host.forced_kinds() == ["prepare"]
    assert host.sent == []  # still nothing on the wire
    host.complete_force()
    assert host.sent_kinds() == ["NbPrepare", "NbPrepare"]


def test_prepare_message_carries_sites_and_quorum():
    """Change 1."""
    host = coordinator()
    host.local_prepared(Vote.YES)
    host.complete_force()
    msg = host.sent[0][1]
    assert msg.sites == ("a", "b", "c")
    assert msg.quorum == Q3


def test_full_commit_path_counts_forces():
    host = coordinator()
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.deliver(NbVote(tid=TID1, sender="b", vote=Vote.YES))
    host.deliver(NbVote(tid=TID1, sender="c", vote=Vote.YES))
    # Replication phase: own replication record forced before sending.
    assert host.forced_kinds() == ["prepare", "replication"]
    host.complete_force()
    assert host.sent_kinds().count("NbReplicate") == 2
    # One ack completes the commit quorum (own record + 1 = Qc = 2).
    host.deliver(NbReplicateAck(tid=TID1, sender="b", ok=True))
    assert host.machine.state is NbCoordinatorState.NOTIFYING
    assert host.completions == [Outcome.COMMITTED]
    assert host.local_commits == [TID1]
    # The coordinator's own commit record is lazy: exactly 2 forces.
    assert host.written_kinds() == ["commit"]
    assert len(host.forced) == 2
    # Forgetting waits for every outcome ack (change 4).
    assert host.forgotten == []
    host.deliver(NbOutcomeAck(tid=TID1, sender="b"))
    host.deliver(NbOutcomeAck(tid=TID1, sender="c"))
    assert host.forgotten == [TID1]
    assert host.written_kinds() == ["commit", "end"]


def test_subordinate_two_forces_on_path():
    host = subordinate()
    host.local_prepared(Vote.YES)
    assert host.forced_kinds() == ["prepare"]
    host.complete_force()
    assert host.sent_kinds() == ["NbVote"]
    host.deliver(NbReplicate(tid=TID1, sender="a",
                             decision_data=decision_data()))
    assert host.forced_kinds() == ["prepare", "replication"]
    host.complete_force()
    acks = [m for _, m in host.sent if isinstance(m, NbReplicateAck)]
    assert acks and acks[0].ok
    host.deliver(NbOutcome(tid=TID1, sender="a", outcome=Outcome.COMMITTED))
    assert host.local_commits == [TID1]
    assert host.written_kinds() == ["commit"]  # lazy
    assert host.forgotten == [TID1]


def test_subordinate_prepare_record_carries_sites_and_quorum():
    host = subordinate()
    host.local_prepared(Vote.YES)
    record = host.forced[0]
    assert record.payload["sites"] == SITES3
    assert record.payload["quorum_sizes"]["commit_quorum"] == 2


# ------------------------------------------------------- read-only


def test_fully_read_only_no_forces_no_replication():
    host = coordinator()
    host.local_prepared(Vote.READ_ONLY)
    assert host.forced == []  # read-only coordinator skips its force
    host.deliver(NbVote(tid=TID1, sender="b", vote=Vote.READ_ONLY))
    host.deliver(NbVote(tid=TID1, sender="c", vote=Vote.READ_ONLY))
    assert host.forced == [] and host.written == []
    assert host.completions == [Outcome.COMMITTED]
    assert host.forgotten == [TID1]


def test_read_only_subordinate_drops_out():
    host = subordinate()
    host.local_prepared(Vote.READ_ONLY)
    assert host.forced == []
    assert host.local_commits == [TID1]
    assert host.forgotten == [TID1]


def test_read_only_sites_drafted_as_quorum_helpers_when_needed():
    """1 update site of 3 cannot form Qc=2: a helper is drafted."""
    host = coordinator()
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.deliver(NbVote(tid=TID1, sender="b", vote=Vote.READ_ONLY))
    host.deliver(NbVote(tid=TID1, sender="c", vote=Vote.READ_ONLY))
    host.complete_force()  # own replication record
    # One read-only site must be drafted to reach the quorum.
    replicates = [d for d, m in host.sent if isinstance(m, NbReplicate)]
    assert len(replicates) == 1


def test_helper_machine_from_replicate_message():
    msg = NbReplicate(tid=TID1, sender="x", decision_data=decision_data())
    machine = NbSubordinate.helper(TID1, "c", msg)
    host = MachineHost(machine)
    host.deliver(msg)
    assert host.forced_kinds() == ["replication"]
    host.complete_force()
    acks = [m for _, m in host.sent if isinstance(m, NbReplicateAck)]
    assert acks[0].ok


# ----------------------------------------------------------- aborts


def test_no_vote_aborts_unilaterally_pre_replication():
    host = coordinator()
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.deliver(NbVote(tid=TID1, sender="b", vote=Vote.NO))
    assert host.completions == [Outcome.ABORTED]
    assert host.written_kinds() == ["abort"]
    outcomes = [m for _, m in host.sent if isinstance(m, NbOutcome)]
    assert [m.outcome for m in outcomes] == [Outcome.ABORTED]  # to "c" only


def test_unilateral_abort_after_replication_is_violation():
    host = coordinator()
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.deliver(NbVote(tid=TID1, sender="b", vote=Vote.YES))
    host.deliver(NbVote(tid=TID1, sender="c", vote=Vote.YES))
    host.complete_force()  # replication begins
    with pytest.raises(NbProtocolViolation):
        host.execute(host.machine.abort_now())


def test_vote_timeout_retries_then_aborts():
    host = coordinator(max_prepare_retries=1)
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.fire_timer(NB_VOTE_TIMER)
    assert host.sent_kinds().count("NbPrepare") == 4  # 2 + 2 retries
    host.fire_timer(NB_VOTE_TIMER)
    assert host.completions == [Outcome.ABORTED]


def test_pledged_site_votes_no_to_late_prepare():
    host = MachineHost(NbSubordinate(TID1, "b", "a", SITES3, Q3,
                                     already_pledged=True)).start()
    votes = [m for _, m in host.sent if isinstance(m, NbVote)]
    assert votes[0].vote is Vote.NO
    assert host.local_prepares == []


# ---------------------------------------- quorum membership exclusivity


def test_replicated_site_refuses_abort_join():
    host = subordinate()
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.deliver(NbReplicate(tid=TID1, sender="a",
                             decision_data=decision_data()))
    host.complete_force()
    host.deliver(NbAbortJoin(tid=TID1, sender="c"))
    acks = [m for _, m in host.sent if isinstance(m, NbAbortJoinAck)]
    assert acks and not acks[0].ok


def test_pledged_site_refuses_replication():
    host = subordinate()
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.deliver(NbAbortJoin(tid=TID1, sender="c"))
    assert host.forced_kinds() == ["prepare", "abort_pledge"]
    host.complete_force()
    host.deliver(NbReplicate(tid=TID1, sender="a",
                             decision_data=decision_data()))
    acks = [m for _, m in host.sent if isinstance(m, NbReplicateAck)]
    assert acks and not acks[0].ok


def test_pledge_is_forced_before_acknowledged():
    host = subordinate()
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.deliver(NbAbortJoin(tid=TID1, sender="c"))
    assert not any(isinstance(m, NbAbortJoinAck) for _, m in host.sent)
    host.complete_force()
    acks = [m for _, m in host.sent if isinstance(m, NbAbortJoinAck)]
    assert acks and acks[0].ok


def test_commit_outcome_at_pledged_site_is_adopted():
    """A lone pledge keeps this site out of the commit quorum; it cannot
    veto a commit that formed from the other sites.  Quorum intersection
    rules out a decided abort coexisting, so the outcome is adopted."""
    host = subordinate()
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.deliver(NbAbortJoin(tid=TID1, sender="c"))
    host.complete_force()
    host.deliver(NbOutcome(tid=TID1, sender="x",
                           outcome=Outcome.COMMITTED))
    assert host.machine.outcome is Outcome.COMMITTED
    assert host.machine.state is NbSubState.DONE
    assert host.local_commits == [TID1]


# -------------------------------------------------- subordinate timeout


def test_prepared_subordinate_times_out_into_takeover():
    """Change 2: subordinates do not wait forever."""
    host = subordinate()
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.fire_timer(NB_OUTCOME_TIMER)
    assert host.takeover_requests == [TID1]
    assert host.machine.state is NbSubState.PREPARED  # still waiting


def test_state_report_statuses():
    host = subordinate()
    host.local_prepared(Vote.YES)
    assert host.machine.status_report()[0] == "no_state"
    host.complete_force()
    assert host.machine.status_report()[0] == "prepared"
    host.deliver(NbReplicate(tid=TID1, sender="a",
                             decision_data=decision_data()))
    host.complete_force()
    status, data = host.machine.status_report()
    assert status == "replicated"
    assert data["votes"]["b"] == "yes"


def test_state_request_answered_with_round():
    host = subordinate()
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.deliver(NbStateRequest(tid=TID1, sender="c", round=7))
    reports = [m for _, m in host.sent if isinstance(m, NbStateReport)]
    assert reports[0].status == "prepared"
    assert reports[0].round == 7


# ----------------------------------------------------------- takeover


def test_takeover_adopts_known_outcome():
    host = takeover()
    assert host.sent_kinds().count("NbStateRequest") == 2
    host.deliver(NbStateReport(tid=TID1, sender="c", status="committed"))
    outcomes = [m for _, m in host.sent if isinstance(m, NbOutcome)]
    assert outcomes and all(m.outcome is Outcome.COMMITTED for m in outcomes)


def test_takeover_completes_commit_quorum_by_promotion():
    host = takeover(own_status="replicated", decision=decision_data())
    # One more replicated site appears: quorum reached instantly.
    host.deliver(NbStateReport(tid=TID1, sender="c", status="replicated",
                               decision_data=decision_data()))
    outcomes = [m for _, m in host.sent if isinstance(m, NbOutcome)]
    assert outcomes and outcomes[0].outcome is Outcome.COMMITTED


def test_takeover_promotes_prepared_sites():
    host = takeover(own_status="replicated", decision=decision_data())
    host.deliver(NbStateReport(tid=TID1, sender="c", status="prepared"))
    host.fire_timer(NB_TAKEOVER_TIMER)  # poll round ends: evaluate
    promotions = [m for _, m in host.sent if isinstance(m, NbReplicate)]
    assert [d for d, m in host.sent if isinstance(m, NbReplicate)] == ["c"]
    host.deliver(NbReplicateAck(tid=TID1, sender="c", ok=True))
    outcomes = [m for _, m in host.sent if isinstance(m, NbOutcome)]
    assert outcomes and outcomes[0].outcome is Outcome.COMMITTED


def test_takeover_cannot_commit_without_replication_witness():
    """No replication record anywhere => all votes might not have been
    YES => only abort is reachable."""
    host = takeover(own_status="prepared")
    host.deliver(NbStateReport(tid=TID1, sender="c", status="prepared"))
    host.fire_timer(NB_TAKEOVER_TIMER)
    assert not any(isinstance(m, NbReplicate) for _, m in host.sent)
    joins = [d for d, m in host.sent if isinstance(m, NbAbortJoin)]
    assert joins == ["c"]
    # Own pledge is forced locally.
    assert host.forced_kinds() == ["abort_pledge"]


def test_takeover_abort_quorum_completes():
    host = takeover(own_status="prepared")
    host.deliver(NbStateReport(tid=TID1, sender="c", status="prepared"))
    host.fire_timer(NB_TAKEOVER_TIMER)
    host.complete_force()  # own pledge durable: 1 of Qa=2
    host.deliver(NbAbortJoinAck(tid=TID1, sender="c", ok=True))
    outcomes = [m for _, m in host.sent if isinstance(m, NbOutcome)]
    assert outcomes and outcomes[0].outcome is Outcome.ABORTED


def test_takeover_blocked_with_insufficient_reach():
    """Two failures: a single prepared survivor can form no quorum."""
    host = takeover(own_status="prepared")
    host.fire_timer(NB_TAKEOVER_TIMER)  # nobody answered
    assert not any(isinstance(m, (NbReplicate, NbAbortJoin, NbOutcome))
                   for _, m in host.sent)
    assert NB_TAKEOVER_TIMER in host.timers  # retries later
    assert any(t.kind == "nb.blocked" for t in host.traces)


def test_takeover_refused_promotion_marks_pledged():
    host = takeover(own_status="replicated", decision=decision_data())
    host.deliver(NbStateReport(tid=TID1, sender="c", status="prepared"))
    host.fire_timer(NB_TAKEOVER_TIMER)
    host.deliver(NbReplicateAck(tid=TID1, sender="c", ok=False))
    assert "c" in host.machine.pledged


def test_takeover_stands_down_on_peer_outcome():
    host = takeover(own_status="prepared")
    host.deliver(NbOutcome(tid=TID1, sender="c", outcome=Outcome.ABORTED))
    acks = [m for _, m in host.sent if isinstance(m, NbOutcomeAck)]
    assert acks
    assert host.machine.outcome is Outcome.ABORTED


def test_conflicting_peer_outcomes_raise():
    host = takeover(own_status="replicated", decision=decision_data())
    host.deliver(NbStateReport(tid=TID1, sender="c", status="replicated"))
    with pytest.raises(NbProtocolViolation):
        host.deliver(NbOutcome(tid=TID1, sender="c",
                               outcome=Outcome.ABORTED))


def test_recovered_committed_coordinator_renotifies():
    host = takeover(site="a", own_status="committed")
    outcomes = [m for _, m in host.sent if isinstance(m, NbOutcome)]
    assert len(outcomes) == 2  # b and c
    host.deliver(NbOutcomeAck(tid=TID1, sender="b"))
    host.deliver(NbOutcomeAck(tid=TID1, sender="c"))
    assert host.forgotten == [TID1]


def test_takeover_notify_retries_then_stands_down():
    host = takeover(own_status="committed", max_notify_retries=2)
    for _ in range(2):
        host.fire_timer(NB_TAKEOVER_TIMER)
    assert host.forgotten == []
    host.fire_timer(NB_TAKEOVER_TIMER)
    assert host.forgotten == [TID1]


def test_coordinator_replication_timeout_resends():
    host = coordinator()
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.deliver(NbVote(tid=TID1, sender="b", vote=Vote.YES))
    host.deliver(NbVote(tid=TID1, sender="c", vote=Vote.YES))
    host.complete_force()
    before = host.sent_kinds().count("NbReplicate")
    host.fire_timer(NB_REPL_TIMER)
    assert host.sent_kinds().count("NbReplicate") == before + 2


def test_coordinator_accepts_takeover_abort_post_replication():
    host = coordinator()
    host.local_prepared(Vote.YES)
    host.complete_force()
    host.deliver(NbVote(tid=TID1, sender="b", vote=Vote.YES))
    host.deliver(NbVote(tid=TID1, sender="c", vote=Vote.YES))
    host.complete_force()
    host.deliver(NbOutcome(tid=TID1, sender="b", outcome=Outcome.ABORTED))
    assert host.completions == [Outcome.ABORTED]
    assert host.local_aborts == [TID1]


def test_already_pledged_coordinator_aborts_before_preparing():
    """A coordinator whose site granted a stateless abort pledge earlier
    (e.g. to a takeover for a transaction it then recovered) must treat
    its own YES as NO: the pledge bars this site from the commit quorum,
    and commitment starting here could put it in both."""
    host = coordinator(already_pledged=True)
    host.local_prepared(Vote.YES)
    assert host.machine.local_vote is Vote.NO
    assert host.local_aborts == [TID1]
    assert "prepare" not in host.forced_kinds()
    assert not any(isinstance(m, NbPrepare) for _, m in host.sent)
