"""repro.live.walfile: the on-disk WAL keeps the simulator WAL's
contract — LSN-ordered appends, prefix forces, durability watches —
while surviving what real files suffer: torn tails, truncated headers,
kill -9 between append and force.  Recovery reads it with the same
:func:`repro.servers.recovery.analyze` discriminators the simulator
uses, which is the property the live kill-9 demos stand on."""

import os

from repro.core.outcomes import Outcome
from repro.log.records import (
    RecordKind,
    commit_record,
    end_record,
    prepare_record,
)
from repro.live.walfile import FileWal, read_records
from repro.servers.recovery import analyze


def _wal(tmp_path, name="site.wal", fsync=False):
    return FileWal(str(tmp_path / name), fsync=fsync)


class TestAppendForce:
    def test_append_assigns_dense_lsns(self, tmp_path):
        wal = _wal(tmp_path)
        r1 = wal.append(prepare_record("T1@a", "b", coordinator="a"))
        r2 = wal.append(commit_record("T1@a", "a"))
        assert (r1.lsn, r2.lsn) == (1, 2)
        assert wal.durable_lsn == 0
        wal.close()

    def test_force_is_prefix_durable(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append(prepare_record("T1@a", "b", coordinator="a"))
        wal.append(commit_record("T1@a", "a"))
        wal.force(1)
        assert wal.durable_lsn == 1
        # Reader (recovery's view) sees exactly the durable prefix.
        assert [r.kind for r in read_records(wal.path)] == \
            [RecordKind.PREPARE]
        wal.force(None)
        assert wal.durable_lsn == 2
        assert len(read_records(wal.path)) == 2
        wal.close()

    def test_watch_fires_on_covering_force_only(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append(prepare_record("T1@a", "b", coordinator="a"))
        wal.append(commit_record("T1@a", "a"))
        fired = []
        wal.watch_durable(2, lambda: fired.append("2"))
        ready = wal.force(1)
        assert ready == [] and fired == []
        ready = wal.force(2)
        assert len(ready) == 1
        ready[0]()
        assert fired == ["2"]
        wal.close()

    def test_watch_on_already_durable_fires_immediately(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append(commit_record("T1@a", "a"))
        wal.force(None)
        fired = []
        wal.watch_durable(1, lambda: fired.append("now"))
        assert fired == ["now"]
        wal.close()

    def test_fsync_true_actually_fsyncs(self, tmp_path):
        # Functional floor: records are on disk after force even if the
        # process is about to die (we can only assert readability here).
        wal = _wal(tmp_path, fsync=True)
        wal.append(commit_record("T9@a", "a"))
        wal.force(None)
        assert [r.tid for r in read_records(wal.path)] == ["T9@a"]
        wal.close()


class TestReopenAndTornTails:
    def test_reopen_renumbers_densely_and_appends_after(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append(prepare_record("T1@a", "b", coordinator="a"))
        wal.append(commit_record("T1@a", "a"))
        wal.force(None)
        wal.close()
        wal2 = _wal(tmp_path)
        assert [r.lsn for r in wal2.recovered_records] == [1, 2]
        r3 = wal2.append(end_record("T1@a", "a"))
        assert r3.lsn == 3
        wal2.force(None)
        assert len(read_records(wal2.path)) == 3
        wal2.close()

    def test_unforced_suffix_is_lost_on_crash(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append(prepare_record("T1@a", "b", coordinator="a"))
        wal.force(None)
        wal.append(commit_record("T1@a", "a"))  # never forced
        wal.close()  # "kill -9": volatile tail discarded
        wal2 = _wal(tmp_path)
        assert [r.kind for r in wal2.recovered_records] == \
            [RecordKind.PREPARE]
        wal2.close()

    def test_torn_tail_truncated_at_reopen(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append(prepare_record("T1@a", "b", coordinator="a"))
        wal.append(commit_record("T1@a", "a"))
        wal.force(None)
        wal.close()
        # Crash mid-write of the *last* record: chop bytes off the tail.
        path = str(tmp_path / "site.wal")
        data = open(path, "rb").read()
        open(path, "wb").write(data[:-7])
        wal2 = _wal(tmp_path)
        assert [r.kind for r in wal2.recovered_records] == \
            [RecordKind.PREPARE]
        # New appends land cleanly after the valid prefix.
        wal2.append(commit_record("T1@a", "a"))
        wal2.force(None)
        assert [r.kind for r in read_records(path)] == \
            [RecordKind.PREPARE, RecordKind.COMMIT]
        wal2.close()

    def test_corrupt_payload_stops_the_scan(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append(prepare_record("T1@a", "b", coordinator="a"))
        wal.append(commit_record("T1@a", "a"))
        wal.force(None)
        wal.close()
        path = str(tmp_path / "site.wal")
        data = bytearray(open(path, "rb").read())
        data[-3] ^= 0xFF  # flip a bit inside the last record's payload
        open(path, "wb").write(bytes(data))
        assert [r.kind for r in read_records(path)] == [RecordKind.PREPARE]

    def test_mangled_header_means_empty_wal(self, tmp_path):
        path = str(tmp_path / "site.wal")
        open(path, "wb").write(b"not a wal at all")
        wal = _wal(tmp_path)
        assert wal.recovered_records == []
        wal.append(commit_record("T1@a", "a"))
        wal.force(None)
        assert [r.tid for r in read_records(path)] == ["T1@a"]
        wal.close()

    def test_missing_file_starts_fresh(self, tmp_path):
        wal = _wal(tmp_path, name="new.wal")
        assert wal.recovered_records == []
        assert os.path.getsize(wal.path) > 0  # header written eagerly
        wal.close()


class TestRecoveryIntegration:
    def test_analyze_reads_a_real_wal(self, tmp_path):
        """The same discriminators that drive simulator recovery classify
        a real on-disk WAL: forced prepare with no outcome -> in doubt."""
        wal = _wal(tmp_path)
        wal.append(prepare_record("T1@coord", "me", coordinator="coord"))
        wal.force(None)
        wal.append(commit_record("T2@coord", "me"))
        wal.force(None)
        wal.close()
        plan = analyze("me", read_records(str(tmp_path / "site.wal")))
        assert [str(e.tid) for e in plan.in_doubt] == ["T1@coord"]
        assert plan.in_doubt[0].protocol == "two_phase"
        assert plan.tombstones["T2@coord"] is Outcome.COMMITTED
