"""Unit tests for the Paxos Commit machines, hand-cranked sans-IO.

The load-bearing shape is F=0: with the leader as sole acceptor the
protocol must trace optimized 2PC exactly — one forced prepare at the
subordinate, one forced decision at the leader, three protocol
datagrams, the final ack piggybacked lazily.  F=1 adds the acceptor
round (durable ballot-0 acceptances, phase-2b reports).  Every handler
must also shrug off duplicate delivery: the chaos duplication mode
replays arbitrary datagrams, so each duplicate case here mirrors a
schedule the sweeps actually generate.
"""

import pytest

from repro.core.messages import (
    PcOutcome,
    PcOutcomeAck,
    PcP1a,
    PcPhase2b,
    PcPrepare,
    PcVote,
)
from repro.core.outcomes import Outcome, Vote
from repro.core.paxoscommit import (
    PC_ACCEPT_FORCE,
    PC_COMMIT_DURABLE,
    PC_DECIDE_FORCE,
    PC_NOTIFY_TIMER,
    PC_OUTCOME_TIMER,
    PC_PREPARE_FORCE,
    PC_VOTE_TIMER,
    PcLeader,
    PcLeaderState,
    PcParticipant,
    PcProtocolViolation,
    PcSubState,
)
from repro.core.quorum import QuorumSpec
from repro.core.tid import TID

from tests.machine_harness import MachineHost

TID1 = TID("T1@a")
Q1 = QuorumSpec.paxos(1)
Q3 = QuorumSpec.paxos(3)
SITES2 = ["a", "b"]
SITES3 = ["a", "b", "c"]


def f0_leader():
    """F=0: leader a, subordinate b, leader is the sole acceptor."""
    return MachineHost(PcLeader(TID1, "a", ["b"], ["a"], Q1)).start()


def f0_participant():
    return MachineHost(PcParticipant(TID1, "b", "a", SITES2, ["a"],
                                     Q1)).start()


def f1_leader():
    """F=1: three sites, all acceptors."""
    return MachineHost(PcLeader(TID1, "a", ["b", "c"], SITES3, Q3)).start()


def vote_from(sender, vote=Vote.YES, acceptors=("a",), sites=SITES2):
    return PcVote(TID1, sender, vote=vote, leader="a",
                  sites=tuple(sites), acceptors=tuple(acceptors))


# --------------------------------------------------- F=0: the 2PC shape


def test_f0_leader_happy_path_is_2pc_shaped():
    host = f0_leader()
    assert len(host.local_prepares) == 1
    assert host.sent_kinds() == ["PcPrepare"]
    assert PC_VOTE_TIMER in host.timers

    host.local_prepared(Vote.YES)
    # Own instance chosen immediately (sole acceptor); still waiting on b.
    assert host.forced == [] and host.machine.state is PcLeaderState.COLLECTING

    host.deliver(vote_from("b"))
    # The single force of the whole leader lifetime: the decision record.
    assert host.pending_forces == [PC_DECIDE_FORCE]
    assert host.forced_kinds() == ["coord_commit"]
    assert PC_VOTE_TIMER not in host.timers

    host.complete_force(PC_DECIDE_FORCE)
    assert host.messages_to("b") and \
        isinstance(host.messages_to("b")[-1], PcOutcome)
    assert host.local_commits == [TID1]
    assert host.completions == [Outcome.COMMITTED]
    assert PC_NOTIFY_TIMER in host.timers

    host.deliver(PcOutcomeAck(TID1, "b"))
    assert host.written_kinds() == ["end"]
    assert host.forgotten == [TID1]
    # Totals: 1 force, 2 datagrams sent (prepare, outcome).
    assert len(host.forced) == 1 and len(host.sent) == 2


def test_f0_participant_happy_path_is_2pc_shaped():
    host = f0_participant()
    assert len(host.local_prepares) == 1

    host.local_prepared(Vote.YES)
    assert host.pending_forces == [PC_PREPARE_FORCE]
    assert host.forced_kinds() == ["prepare"]
    assert host.sent == []          # vote only after the force

    host.complete_force(PC_PREPARE_FORCE)
    [(dst, msg)] = host.sent
    assert dst == "a" and isinstance(msg, PcVote)
    assert msg.vote is Vote.YES
    assert PC_OUTCOME_TIMER in host.timers

    host.deliver(PcOutcome(TID1, "a", outcome=Outcome.COMMITTED))
    assert host.local_commits == [TID1]
    assert host.written_kinds() == ["commit"]          # lazy, not forced
    assert host.pending_durable == [PC_COMMIT_DURABLE]

    host.complete_durable(PC_COMMIT_DURABLE)
    [(dst, ack)] = host.lazy_sent                       # piggybacked ack
    assert dst == "a" and isinstance(ack, PcOutcomeAck)
    assert host.forgotten == [TID1]
    # Totals: 1 force, 1 eager datagram — with the leader's side that is
    # the optimized-2PC bill of 2 forces / 3 datagrams.
    assert len(host.forced) == 1 and len(host.sent) == 1


def test_f0_leader_aborts_on_explicit_no_vote():
    host = f0_leader()
    host.local_prepared(Vote.YES)
    host.deliver(vote_from("b", vote=Vote.NO))
    assert host.local_aborts == [TID1]
    assert host.written_kinds() == ["abort"]            # never forced
    assert host.completions == [Outcome.ABORTED]
    assert host.forgotten == [TID1]
    # b voted NO: it knows, no outcome datagram owed.
    assert host.sent_kinds() == ["PcPrepare"]


def test_f0_participant_no_vote_drops_out_presumed_abort():
    host = f0_participant()
    host.local_prepared(Vote.NO)
    assert [type(m).__name__ for _, m in host.sent] == ["PcVote"]
    assert host.forced == []                             # nothing durable
    assert host.local_aborts == [TID1]
    assert host.written_kinds() == ["abort"]
    assert host.forgotten == [TID1]


def test_f0_fully_read_only_commits_with_no_durable_state():
    host = f0_leader()
    host.local_prepared(Vote.READ_ONLY)
    host.deliver(vote_from("b", vote=Vote.READ_ONLY))
    assert host.forced == [] and host.written == []
    assert host.local_commits == [TID1]
    assert host.completions == [Outcome.COMMITTED]
    assert host.forgotten == [TID1]


def test_f0_vote_timeout_aborts_like_2pc():
    host = MachineHost(PcLeader(TID1, "a", ["b"], ["a"], Q1,
                                max_vote_retries=0)).start()
    host.local_prepared(Vote.YES)
    host.fire_timer(PC_VOTE_TIMER)
    # Sole acceptor: no acceptance can exist elsewhere, timeout abort is
    # as safe as 2PC's.
    assert host.completions == [Outcome.ABORTED]
    assert host.takeover_requests == []


# ------------------------------------------------- F=1: the acceptor round


def test_f1_leader_forces_prepare_before_voting():
    host = f1_leader()
    host.local_prepared(Vote.YES)
    # With remote acceptors the leader's own ballot-0 acceptance must be
    # durable before its vote fans out (the vote IS the phase-2a).
    assert host.pending_forces == [PC_PREPARE_FORCE]
    assert not any(isinstance(m, PcVote) for _, m in host.sent)
    host.complete_force(PC_PREPARE_FORCE)
    votes = [d for d, m in host.sent if isinstance(m, PcVote)]
    assert sorted(votes) == ["b", "c"]


def test_f1_leader_decides_only_on_acceptor_quorum_per_instance():
    host = f1_leader()
    host.local_prepared(Vote.YES)
    host.complete_force(PC_PREPARE_FORCE)

    # Co-location: a vote from acceptor site b is also b's phase-2b for
    # its own instance, and our embedded acceptor accepts it (forced).
    host.deliver(vote_from("b", acceptors=SITES3, sites=SITES3))
    host.deliver(vote_from("c", acceptors=SITES3, sites=SITES3))
    while PC_ACCEPT_FORCE in host.pending_forces:
        host.complete_force(PC_ACCEPT_FORCE)
    # Tally: a@{a}, b@{a,b}, c@{a,c} — instance a still below quorum 2.
    assert PC_DECIDE_FORCE not in host.pending_forces

    # b's acceptor reports its durable acceptance of a's instance.
    host.deliver(PcPhase2b(TID1, "b", ballot=0,
                           votes=(("a", Vote.YES.value),)))
    assert host.pending_forces == [PC_DECIDE_FORCE]
    host.complete_force(PC_DECIDE_FORCE)
    outcomes = [d for d, m in host.sent if isinstance(m, PcOutcome)]
    assert sorted(outcomes) == ["b", "c"]


def test_f1_vote_timeout_starts_election_not_unilateral_abort():
    host = MachineHost(PcLeader(TID1, "a", ["b", "c"], SITES3, Q3,
                                max_vote_retries=0)).start()
    host.local_prepared(Vote.YES)
    host.complete_force(PC_PREPARE_FORCE)
    host.fire_timer(PC_VOTE_TIMER)
    # A candidate may already be assembling a commit from durable
    # ballot-0 acceptances; only an election may decide.
    assert host.takeover_requests == [TID1]
    assert host.completions == []
    # The election owns the retry loop now: re-arming the vote timer
    # would emit StartTakeover on every firing forever.
    assert PC_VOTE_TIMER not in host.timers


def test_f1_participant_acceptor_forces_before_phase2b_reply():
    host = MachineHost(PcParticipant(TID1, "b", "a", SITES3, SITES3,
                                     Q3)).start()
    host.local_prepared(Vote.YES)
    host.complete_force(PC_PREPARE_FORCE)
    host.sent.clear()

    # c's vote reaches b's co-located acceptor.
    host.deliver(vote_from("c", acceptors=SITES3, sites=SITES3))
    assert host.pending_forces == [PC_ACCEPT_FORCE]
    assert host.sent == []                   # reply held until durable
    host.complete_force(PC_ACCEPT_FORCE)
    [(dst, reply)] = host.sent
    assert dst == "a" and isinstance(reply, PcPhase2b)
    assert reply.votes == (("c", Vote.YES.value),)


def test_participant_outcome_timeout_requests_takeover():
    host = f0_participant()
    host.local_prepared(Vote.YES)
    host.complete_force(PC_PREPARE_FORCE)
    host.fire_timer(PC_OUTCOME_TIMER)
    assert host.takeover_requests == [TID1]
    assert PC_OUTCOME_TIMER in host.timers               # re-armed


# ------------------------------------------------------ duplicate delivery


def test_duplicate_vote_at_f0_leader_is_idempotent():
    host = f0_leader()
    host.local_prepared(Vote.YES)
    host.deliver(vote_from("b"))
    host.deliver(vote_from("b"))                         # wire duplicate
    assert host.forced_kinds() == ["coord_commit"]       # exactly one
    host.complete_force(PC_DECIDE_FORCE)
    before = len(host.sent)
    # Post-decision duplicate: answered with the outcome, nothing else.
    host.deliver(vote_from("b"))
    assert isinstance(host.sent[-1][1], PcOutcome)
    assert len(host.sent) == before + 1
    assert host.completions == [Outcome.COMMITTED]


def test_duplicate_outcome_at_participant_is_idempotent():
    host = f0_participant()
    host.local_prepared(Vote.YES)
    host.complete_force(PC_PREPARE_FORCE)
    outcome = PcOutcome(TID1, "a", outcome=Outcome.COMMITTED)
    host.deliver(outcome)
    # Second copy while the commit record is still in flight: silent —
    # the ack promises durability, so we let the notifier retry.
    host.deliver(outcome)
    assert host.local_commits == [TID1]
    assert host.written_kinds() == ["commit"]
    host.complete_durable(PC_COMMIT_DURABLE)
    assert host.forgotten == [TID1]
    # Copies after durability are the tombstone layer's problem (the
    # machine is forgotten); at the machine they stay inert.
    sends = len(host.sent)
    host.deliver(outcome)
    assert host.local_commits == [TID1]
    assert len(host.sent) == sends


def test_duplicate_ack_at_leader_writes_one_end_record():
    host = f0_leader()
    host.local_prepared(Vote.YES)
    host.deliver(vote_from("b"))
    host.complete_force(PC_DECIDE_FORCE)
    host.deliver(PcOutcomeAck(TID1, "b"))
    host.deliver(PcOutcomeAck(TID1, "b"))
    assert host.written_kinds() == ["end"]
    assert host.forgotten == [TID1]


def test_duplicate_prepare_at_prepared_participant_revotes():
    host = f0_participant()
    host.local_prepared(Vote.YES)
    host.complete_force(PC_PREPARE_FORCE)
    host.deliver(PcPrepare(TID1, "a", sites=tuple(SITES2),
                           acceptors=("a",)))
    votes = [m for _, m in host.sent if isinstance(m, PcVote)]
    assert len(votes) == 2                               # original + re-vote
    assert len(host.forced) == 1                         # no second force


def test_duplicate_vote_at_acceptor_resends_phase2b_without_force():
    host = MachineHost(PcParticipant(TID1, "b", "a", SITES3, SITES3,
                                     Q3)).start()
    host.local_prepared(Vote.YES)
    host.complete_force(PC_PREPARE_FORCE)
    host.deliver(vote_from("c", acceptors=SITES3, sites=SITES3))
    host.complete_force(PC_ACCEPT_FORCE)
    forces = len(host.forced)
    host.deliver(vote_from("c", acceptors=SITES3, sites=SITES3))
    assert len(host.forced) == forces                    # durable already
    assert isinstance(host.sent[-1][1], PcPhase2b)       # just resent


def test_duplicate_p1a_resends_promise_without_force():
    host = MachineHost(PcParticipant(TID1, "b", "a", SITES3, SITES3,
                                     Q3)).start()
    host.local_prepared(Vote.YES)
    host.complete_force(PC_PREPARE_FORCE)
    p1a = PcP1a(TID1, "c", ballot=6, leader="c",
                sites=tuple(SITES3), acceptors=tuple(SITES3))
    host.deliver(p1a)
    assert host.pending_forces == [PC_ACCEPT_FORCE]
    assert not any(isinstance(m, PcPhase2b) or hasattr(m, "promised")
                   for _, m in host.sent[-1:])
    host.complete_force(PC_ACCEPT_FORCE)
    replies = [m for _, m in host.sent if hasattr(m, "promised")]
    assert len(replies) == 1 and replies[0].promised == 6
    forces = len(host.forced)
    host.deliver(p1a)                                    # duplicate
    assert len(host.forced) == forces
    replies = [m for _, m in host.sent if hasattr(m, "promised")]
    assert len(replies) == 2                             # resent, no force


def test_stale_lower_ballot_p1a_nacked_from_durable_state():
    host = MachineHost(PcParticipant(TID1, "b", "a", SITES3, SITES3,
                                     Q3)).start()
    host.local_prepared(Vote.YES)
    host.complete_force(PC_PREPARE_FORCE)
    host.deliver(PcP1a(TID1, "c", ballot=6, leader="c",
                       sites=tuple(SITES3), acceptors=tuple(SITES3)))
    host.complete_force(PC_ACCEPT_FORCE)
    forces = len(host.forced)
    host.deliver(PcP1a(TID1, "b2", ballot=2, leader="b2",
                       sites=tuple(SITES3), acceptors=tuple(SITES3)))
    # Nack straight from durable state: promised=6 in the reply, no force.
    assert len(host.forced) == forces
    nack = host.sent[-1][1]
    assert nack.promised == 6


# --------------------------------- review regressions: durability races


def test_ro_acceptor_participant_forces_before_voting():
    """An acceptor site's READ_ONLY vote doubles as its durable ballot-0
    phase-2b at the leader, but forces no prepare record — so the
    acceptor record must land before the vote may go out."""
    host = MachineHost(PcParticipant(TID1, "b", "a", SITES3, SITES3,
                                     Q3)).start()
    host.local_prepared(Vote.READ_ONLY)
    assert host.local_commits == [TID1]              # read locks dropped
    assert host.pending_forces == [PC_ACCEPT_FORCE]
    assert host.sent == []                           # vote held
    assert host.machine.state is PcSubState.ACCEPTING
    host.complete_force(PC_ACCEPT_FORCE)
    votes = [(d, m) for d, m in host.sent if isinstance(m, PcVote)]
    assert sorted(d for d, _ in votes) == ["a", "c"]
    assert all(m.vote is Vote.READ_ONLY for _, m in votes)


def test_ro_acceptor_revote_waits_for_the_inflight_force():
    host = MachineHost(PcParticipant(TID1, "b", "a", SITES3, SITES3,
                                     Q3)).start()
    host.local_prepared(Vote.READ_ONLY)
    host.deliver(PcPrepare(TID1, "a", sites=tuple(SITES3),
                           acceptors=tuple(SITES3)))
    assert host.sent == []           # re-vote rides the pending force too
    host.complete_force(PC_ACCEPT_FORCE)
    votes = [m for _, m in host.sent if isinstance(m, PcVote)]
    assert len(votes) == 4                    # 2 originals + 2 re-votes


def test_ro_leader_forces_before_tallying_own_instance():
    """The leader's own READ_ONLY vote is its acceptor's ballot-0
    phase-2b: it may neither count toward the instance quorum nor fan
    out to remote acceptors until the acceptor record is durable —
    otherwise a crash-restart could retract a counted acceptance and a
    later candidate could choose abort after commit was decided."""
    host = f1_leader()
    host.local_prepared(Vote.READ_ONLY)
    assert host.pending_forces == [PC_ACCEPT_FORCE]
    assert host.sent_kinds() == ["PcPrepare", "PcPrepare"]   # no votes yet
    assert host.machine.tally == {}                          # no phantom
    host.complete_force(PC_ACCEPT_FORCE)
    votes = [d for d, m in host.sent if isinstance(m, PcVote)]
    assert sorted(votes) == ["b", "c"]
    assert host.machine.tally == {"a": {"a"}}


def test_duplicate_p1a_during_inflight_force_defers_reply():
    """With the duplication fault a second P1a can arrive while the
    first copy's PC_ACCEPT_FORCE is still in flight; replying from
    in-memory state would hand a candidate a promise a crash can still
    retract, breaking quorum intersection."""
    host = MachineHost(PcParticipant(TID1, "b", "a", SITES3, SITES3,
                                     Q3)).start()
    host.local_prepared(Vote.YES)
    host.complete_force(PC_PREPARE_FORCE)
    host.sent.clear()
    p1a = PcP1a(TID1, "c", ballot=6, leader="c",
                sites=tuple(SITES3), acceptors=tuple(SITES3))
    host.deliver(p1a)
    host.deliver(p1a)              # duplicate while the force is pending
    assert host.sent == []                        # both replies held
    assert host.pending_forces == [PC_ACCEPT_FORCE]   # and just one force
    host.complete_force(PC_ACCEPT_FORCE)
    replies = [m for _, m in host.sent if hasattr(m, "promised")]
    assert len(replies) == 2 and all(r.promised == 6 for r in replies)


def test_duplicate_vote_during_inflight_force_defers_2b_resend():
    host = MachineHost(PcParticipant(TID1, "b", "a", SITES3, SITES3,
                                     Q3)).start()
    host.local_prepared(Vote.YES)
    host.complete_force(PC_PREPARE_FORCE)
    host.sent.clear()
    host.deliver(vote_from("c", acceptors=SITES3, sites=SITES3))
    host.deliver(vote_from("c", acceptors=SITES3, sites=SITES3))
    assert host.sent == []                        # resend held as well
    host.complete_force(PC_ACCEPT_FORCE)
    replies = [m for _, m in host.sent if isinstance(m, PcPhase2b)]
    assert len(replies) == 2


def test_interleaved_forces_release_batches_in_order():
    """Each durability batch is released by its *own* force completion:
    an earlier force landing must not flush replies whose record is
    still on its way to the platter."""
    host = MachineHost(PcParticipant(TID1, "b", "a", SITES3, SITES3,
                                     Q3)).start()
    host.local_prepared(Vote.YES)
    host.complete_force(PC_PREPARE_FORCE)
    host.sent.clear()
    host.deliver(vote_from("c", acceptors=SITES3, sites=SITES3))
    host.deliver(PcP1a(TID1, "c", ballot=6, leader="c",
                       sites=tuple(SITES3), acceptors=tuple(SITES3)))
    assert host.pending_forces == [PC_ACCEPT_FORCE, PC_ACCEPT_FORCE]
    host.complete_force(PC_ACCEPT_FORCE)
    assert [type(m).__name__ for _, m in host.sent] == ["PcPhase2b"]
    host.complete_force(PC_ACCEPT_FORCE)
    assert [type(m).__name__ for _, m in host.sent] == ["PcPhase2b",
                                                        "PcP1b"]


def test_recovered_ro_acceptor_restores_durable_read_only_vote():
    """prepared=False with a durable ballot-0 self-acceptance of
    READ_ONLY is a forced read-only vote: restore it so retried
    prepares can be re-answered (it cannot invent a YES)."""
    sub = PcParticipant.recovered(
        TID1, "b", "a", SITES3, SITES3, prepared=False,
        accepted=[["b", 0, Vote.READ_ONLY.value]])
    assert sub.state is PcSubState.ACCEPTING
    assert sub.vote is Vote.READ_ONLY


# ----------------------------------------------------------- misc safety


def test_leader_must_be_an_acceptor():
    with pytest.raises(PcProtocolViolation, match="acceptor set"):
        PcLeader(TID1, "a", ["b"], ["b"], Q1)


def test_machines_refuse_double_start():
    leader = f0_leader()
    with pytest.raises(PcProtocolViolation, match="twice"):
        leader.machine.start()
    sub = f0_participant()
    with pytest.raises(PcProtocolViolation, match="twice"):
        sub.machine.start()


def test_conflicting_ballot0_values_raise():
    host = f1_leader()
    host.local_prepared(Vote.YES)
    host.complete_force(PC_PREPARE_FORCE)
    host.deliver(PcPhase2b(TID1, "b", ballot=0,
                           votes=(("c", Vote.YES.value),)))
    with pytest.raises(PcProtocolViolation, match="two ballot-0 values"):
        host.deliver(PcPhase2b(TID1, "b", ballot=0,
                               votes=(("c", Vote.READ_ONLY.value),)))


def test_leader_adopts_candidate_outcome():
    host = f1_leader()
    host.local_prepared(Vote.YES)
    host.complete_force(PC_PREPARE_FORCE)
    host.deliver(PcOutcome(TID1, "b", outcome=Outcome.ABORTED))
    assert host.local_aborts == [TID1]
    assert host.completions == [Outcome.ABORTED]
    assert isinstance(host.sent[-1][1], PcOutcomeAck)
    assert host.forgotten == [TID1]


# ----------------------------------------------------------- recovery API


def test_recovered_participant_resumes_inquiry():
    sub = PcParticipant.recovered(
        TID1, "b", "a", SITES3, SITES3, promised=4,
        accepted=[["b", 0, Vote.YES.value], ["c", 0, Vote.YES.value]])
    assert sub.state is PcSubState.PREPARED
    assert sub.vote is Vote.YES
    assert sub.acceptor is not None
    assert sub.acceptor.promised == 4
    assert sub.acceptor.accepted["c"] == (0, Vote.YES.value)
    host = MachineHost(sub)
    host.execute(sub.resume_inquiry())
    votes = [d for d, m in host.sent if isinstance(m, PcVote)]
    assert sorted(votes) == ["a", "c"]
    assert PC_OUTCOME_TIMER in host.timers


def test_recovered_acceptor_only_participant_stays_silent():
    """No prepare record: the RM never voted, and recovery must not
    invent one (ballot-0 proposer uniqueness) — acceptor duties only."""
    sub = PcParticipant.recovered(TID1, "b", "a", SITES3, SITES3,
                                  prepared=False)
    assert sub.state is PcSubState.ACCEPTING
    assert sub.vote is None
    host = MachineHost(sub)
    host.execute(sub.resume_inquiry())
    assert not any(isinstance(m, PcVote) for _, m in host.sent)
    assert PC_OUTCOME_TIMER in host.timers


def test_recovered_leader_resumes_notifications():
    leader = PcLeader.recovered(TID1, "a", ["b", "c"], SITES3)
    assert leader.outcome is Outcome.COMMITTED
    host = MachineHost(leader)
    host.execute(leader.resume_notifications())
    outcomes = [d for d, m in host.sent if isinstance(m, PcOutcome)]
    assert sorted(outcomes) == ["b", "c"]
    assert host.local_commits == [TID1]
    host.deliver(PcOutcomeAck(TID1, "b"))
    host.deliver(PcOutcomeAck(TID1, "c"))
    assert host.written_kinds() == ["end"]
    assert host.forgotten == [TID1]
