"""Unit tests for SimEvent and combinators."""

import pytest

from repro.sim.events import SimEvent, all_of, any_of, timeout_event
from repro.sim.kernel import Kernel, SimulationError


def test_trigger_wakes_callback_with_value():
    k = Kernel()
    ev = SimEvent(k)
    seen = []
    ev.add_callback(seen.append)
    ev.trigger(42)
    k.run()
    assert seen == [42]


def test_callback_after_trigger_still_fires():
    k = Kernel()
    ev = SimEvent(k)
    ev.trigger("v")
    seen = []
    ev.add_callback(seen.append)
    k.run()
    assert seen == ["v"]


def test_double_trigger_raises():
    k = Kernel()
    ev = SimEvent(k, name="e")
    ev.trigger()
    with pytest.raises(SimulationError):
        ev.trigger()


def test_ignore_retrigger_mode():
    k = Kernel()
    ev = SimEvent(k, ignore_retrigger=True)
    ev.trigger(1)
    ev.trigger(2)  # silently ignored
    assert ev.value == 1


def test_callbacks_deferred_to_next_turn():
    """Triggering never runs callbacks inline (asyncio discipline)."""
    k = Kernel()
    ev = SimEvent(k)
    seen = []
    ev.add_callback(seen.append)
    ev.trigger("x")
    assert seen == []  # not yet
    k.run()
    assert seen == ["x"]


def test_all_of_waits_for_every_event():
    k = Kernel()
    evs = [SimEvent(k) for _ in range(3)]
    combined = all_of(k, evs)
    evs[1].trigger("b")
    evs[0].trigger("a")
    k.run()
    assert not combined.triggered
    evs[2].trigger("c")
    k.run()
    assert combined.triggered
    assert combined.value == ["a", "b", "c"]


def test_all_of_empty_triggers_immediately():
    k = Kernel()
    combined = all_of(k, [])
    assert combined.triggered
    assert combined.value == []


def test_any_of_returns_winner_index_and_value():
    k = Kernel()
    evs = [SimEvent(k) for _ in range(3)]
    combined = any_of(k, evs)
    evs[2].trigger("winner")
    k.run()
    assert combined.value == (2, "winner")


def test_any_of_ignores_later_triggers():
    k = Kernel()
    evs = [SimEvent(k), SimEvent(k)]
    combined = any_of(k, evs)
    evs[0].trigger("first")
    evs[1].trigger("second")
    k.run()
    assert combined.value == (0, "first")


def test_any_of_requires_events():
    with pytest.raises(SimulationError):
        any_of(Kernel(), [])


def test_timeout_event_fires_at_deadline():
    k = Kernel()
    ev = timeout_event(k, 25.0, value="late")
    k.run()
    assert ev.triggered
    assert ev.value == "late"
    assert k.now == 25.0
