"""repro.lint: every rule fires on a seeded fixture, stays quiet on the
repaired tree, and the CLI gates accordingly (ISSUE 2 acceptance)."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.__main__ import main as lint_main


def _write(root: Path, rel: str, source: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))


@pytest.fixture
def fixture_tree(tmp_path: Path) -> Path:
    """A mini package tree with exactly one violation per rule."""
    _write(tmp_path, "sim/bad_clock.py", """
        import os
        import random
        import time


        class Broadcaster:
            def __init__(self, kernel):
                self.kernel = kernel

            def go(self):
                stamp = time.time()                      # wallclock
                jitter = random.random()                 # unseeded-random
                cache_dir = os.getenv("CACHE")           # no-environ
                for dst in {"a", "b"}:                   # unordered-iteration
                    self.kernel.post(0.0, print, dst)
                handle = self.kernel.post_soon(print, 1) # consumed result
                return stamp, jitter, cache_dir, handle
        """)
    _write(tmp_path, "core/messages.py", """
        class ProtocolMessage:
            pass


        class Ping(ProtocolMessage):
            pass


        class Orphan(ProtocolMessage):
            '''Seeded: never handled, not in ANY_MESSAGE.'''


        ANY_MESSAGE = (Ping,)
        """)
    _write(tmp_path, "core/proto.py", """
        from .messages import Ping


        class TwoPhaseVariant:
            OPTIMIZED = 1


        def on_message(msg, variant):
            if isinstance(msg, Ping):
                return []
            if variant is TwoPhaseVariant.OPTIMIZED:
                return [ForceLog(commit_record("t"))]    # lazy-log-force
            return [ForceLog(abort_record("t"))]         # presumed abort
        """)
    _write(tmp_path, "config.py", """
        from dataclasses import dataclass


        @dataclass
        class CostModel:
            log_force: float = 15.0
            datagram: float = 10.0

            def bcopy(self, kb):
                return kb
        """)
    _write(tmp_path, "analysis/formulas.py", """
        from config import CostModel


        def total(c: CostModel):
            return c.log_force + c.datagram_cost         # costmodel-attrs
        """)
    _write(tmp_path, "chaos/oracles.py", """
        def oracle(name):
            def register(fn):
                return fn
            return register


        @oracle("meddling")
        def check_meddling(ctx):
            ctx.system.tracer.events.clear()   # chaos-oracle-readonly
            return []
        """)
    _write(tmp_path, "obs/sampler.py", """
        def sample_queue_depth(recorder, system):
            system.run_for(1.0)                # obs-readonly
            return recorder
        """)
    _write(tmp_path, "core/bookkeeping.py", """
        class OutcomeLedger:
            def __init__(self):
                self.outcomes = {}

            def on_complete(self, tid, outcome):
                self.outcomes[tid] = outcome   # unbounded-growth
        """)
    return tmp_path


ALL_RULES = {
    "wallclock", "unseeded-random", "no-environ", "unordered-iteration",
    "consumed-fire-and-forget", "message-handlers", "lazy-log-force",
    "costmodel-attrs", "chaos-oracle-readonly", "obs-readonly",
    "unbounded-growth",
}


def test_every_rule_fires_on_fixture(fixture_tree):
    report = run_lint(root=fixture_tree)
    assert {f.rule for f in report.findings} == ALL_RULES
    # file:line pointing at real locations
    for f in report.findings:
        assert f.line >= 1
        assert f.file


def test_fixture_findings_carry_locations(fixture_tree):
    report = run_lint(root=fixture_tree)
    by_rule = {f.rule: f for f in report.findings}
    assert by_rule["wallclock"].file.endswith("sim/bad_clock.py")
    assert "time.time" in by_rule["wallclock"].message
    assert by_rule["costmodel-attrs"].key == "attr:datagram_cost"
    assert "Orphan" in by_rule["message-handlers"].message


def test_cli_exits_nonzero_on_fixture(fixture_tree, capsys):
    rc = lint_main([str(fixture_tree), "--no-baseline"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "[wallclock]" in out
    # findings are file:line prefixed
    assert "sim/bad_clock.py:" in out


def test_cli_exits_zero_on_repaired_tree(capsys):
    """The live package tree is the 'repaired tree': lint must pass."""
    repo_root = Path(__file__).resolve().parent.parent
    baseline = repo_root / "lint-baseline.json"
    rc = lint_main(["--baseline", str(baseline)])
    assert rc == 0


def test_cli_json_format(fixture_tree, capsys):
    rc = lint_main([str(fixture_tree), "--no-baseline", "--format", "json"])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert {f["rule"] for f in payload["findings"]} == ALL_RULES
    for f in payload["findings"]:
        assert set(f) == {"rule", "file", "line", "column", "message",
                          "fingerprint"}


def test_rule_filter_and_unknown_rule(fixture_tree, capsys):
    rc = lint_main([str(fixture_tree), "--no-baseline",
                    "--rules", "wallclock"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "[wallclock]" in out and "[no-environ]" not in out
    assert lint_main([str(fixture_tree), "--rules", "nope"]) == 2


def test_baseline_suppresses_and_gates_new(fixture_tree, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    # Accept everything currently found...
    rc = lint_main([str(fixture_tree), "--baseline", str(baseline),
                    "--update-baseline"])
    assert rc == 0
    capsys.readouterr()
    rc = lint_main([str(fixture_tree), "--baseline", str(baseline)])
    assert rc == 0

    entries = json.loads(baseline.read_text())["entries"]
    assert entries and all(e["justification"] for e in entries)

    # ...then a NEW violation still fails the gate.
    _write(fixture_tree, "sim/new_bad.py", """
        import time


        def probe():
            return time.monotonic()
        """)
    capsys.readouterr()
    rc = lint_main([str(fixture_tree), "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "new_bad.py" in out
    assert "bad_clock.py" not in out  # old findings stay baselined


def test_baseline_fingerprints_survive_line_shifts(fixture_tree, tmp_path,
                                                   capsys):
    baseline = tmp_path / "baseline.json"
    lint_main([str(fixture_tree), "--baseline", str(baseline),
               "--update-baseline"])
    # Prepend comment lines: every finding's line number moves.
    bad = fixture_tree / "sim/bad_clock.py"
    bad.write_text("# moved\n# moved again\n" + bad.read_text())
    capsys.readouterr()
    assert lint_main([str(fixture_tree), "--baseline", str(baseline)]) == 0


def test_determinism_rules_skip_harness_code(tmp_path):
    """bench/ and analysis/ run outside the sim clock: wall-clock reads
    there are legitimate (they time the harness itself)."""
    _write(tmp_path, "bench/timing.py", """
        import time


        def wall():
            return time.perf_counter()
        """)
    report = run_lint(root=tmp_path)
    assert report.findings == []


def test_sorted_iteration_is_clean(tmp_path):
    _write(tmp_path, "sim/good.py", """
        from typing import Set


        class Fanout:
            def __init__(self, kernel):
                self.kernel = kernel
                self.targets: Set[str] = set()

            def go(self):
                for dst in sorted(self.targets):
                    self.kernel.post(0.0, print, dst)
        """)
    report = run_lint(root=tmp_path)
    assert report.findings == []


def test_unsorted_set_attr_feeding_effects_flagged(tmp_path):
    _write(tmp_path, "core/fanout.py", """
        from typing import Set


        class Proto:
            def __init__(self):
                self.acked: Set[str] = set()

            def resend(self):
                return [SendDatagram(dst, "m") for dst in self.acked]
        """)
    report = run_lint(root=tmp_path)
    assert [f.rule for f in report.findings] == ["unordered-iteration"]
    assert "self.acked" in report.findings[0].message


def test_oracle_mutations_flagged_reads_clean(tmp_path):
    """chaos-oracle-readonly: every mutation shape through the context
    parameter (or a local aliasing it) fires; pure reads stay clean."""
    _write(tmp_path, "chaos/oracles.py", """
        def oracle(name):
            def register(fn):
                return fn
            return register


        @oracle("dirty")
        def check_dirty(ctx):
            ctx.state["outcome"] = None             # subscript assign
            ctx.system.lan.loss_probability = 0.5   # attribute assign
            ctx.system.lan.delivered += 1           # aug-assign
            del ctx.state["tid"]                    # delete
            machines = ctx.system.tranman("a").machines
            machines.pop("T1")                      # mutator via alias
            return []


        @oracle("clean")
        def check_clean(ctx):
            violations = []
            for site in ctx.live_sites():
                if ctx.tombstone(site) is None:
                    violations.append(site)         # local list: fine
            counts = dict(ctx.system.tracer.counters)
            counts.update(extra=1)                  # copy, not sim state
            return violations


        def helper_not_an_oracle(ctx):
            ctx.state.clear()                       # undecorated: exempt
        """)
    report = run_lint(root=tmp_path, rule_ids=["chaos-oracle-readonly"])
    flagged = [f for f in report.findings if "check_dirty" in f.message]
    assert len(flagged) == 5
    assert not [f for f in report.findings if "check_clean" in f.message]
    assert not [f for f in report.findings if "helper" in f.message]


def test_obs_readonly_mutations_flagged_reads_clean(tmp_path):
    """obs-readonly: obs code may read sim objects reached through any
    parameter but never write to them or steer the run."""
    _write(tmp_path, "obs/collect.py", """
        def dirty(system, tracer):
            tracer.record(0.0, "fake")            # steering call
            system.lan.loss_probability = 0.5     # attribute assign
            system.tracer.counters["x"] += 1      # aug-assign via alias
            tm = system.tranman("a")
            tm.machines.pop("T1")                 # mutator via alias
            del system.sites["a"]                 # delete
            return []


        def clean(system, recorder):
            depth = len(system.tranman("a").machines)
            recorder.gauge(system.kernel.now, "depth", depth)
            rows = [s for s in recorder.all_spans() if s.closed]
            counts = dict(system.tracer.counters)
            counts["extra"] = 1                   # copy, not sim state
            return rows
        """)
    report = run_lint(root=tmp_path, rule_ids=["obs-readonly"])
    assert len([f for f in report.findings if "'dirty'" in f.message]) == 5
    assert not [f for f in report.findings if "'clean'" in f.message]


def test_obs_readonly_exempts_scenario_driver(tmp_path):
    """obs/__main__.py builds and drives the system by design."""
    _write(tmp_path, "obs/__main__.py", """
        def main(system):
            system.run_for(100.0)
            return 0
        """)
    report = run_lint(root=tmp_path, rule_ids=["obs-readonly"])
    assert report.findings == []


def test_unbounded_growth_flags_grow_only_container(tmp_path):
    _write(tmp_path, "core/ledger.py", """
        class Ledger:
            def __init__(self):
                self.seen = set()
                self.rows = []

            def on_event(self, tid):
                self.seen.add(tid)
                self.rows.append(tid)
        """)
    report = run_lint(root=tmp_path, rule_ids=["unbounded-growth"])
    assert {f.key for f in report.findings} == {"Ledger.seen", "Ledger.rows"}


def test_unbounded_growth_any_shrink_suppresses(tmp_path):
    _write(tmp_path, "core/pruned.py", """
        class Pruned:
            def __init__(self):
                self.tombstones = {}
                self.retired = []
                self.live = set()

            def on_complete(self, tid, outcome):
                self.tombstones[tid] = outcome
                self.retired.append(tid)
                self.live.add(tid)

            def expire(self, tid):
                self.tombstones.pop(tid, None)
                self.live.discard(tid)

            def sweep(self):
                self.retired = [t for t in self.retired if t.alive]
        """)
    report = run_lint(root=tmp_path, rule_ids=["unbounded-growth"])
    assert report.findings == []


def test_unbounded_growth_ignores_init_and_delegation(tmp_path):
    _write(tmp_path, "core/clean.py", """
        class Clean:
            def __init__(self, diskman, names):
                self.diskman = diskman
                self.names = []
                for n in names:
                    self.names.append(n)      # construction, not growth

            def on_update(self, record):
                # Delegation: diskman is a component, not a container.
                self.diskman.append(record)
        """)
    report = run_lint(root=tmp_path, rule_ids=["unbounded-growth"])
    assert report.findings == []


def test_unbounded_growth_subscript_assignment_counts(tmp_path):
    _write(tmp_path, "core/subscripted.py", """
        class ByKey:
            def __init__(self):
                self.index = {}

            def on_event(self, key, value):
                self.index[key] = value

        class ByKeyDeleted:
            def __init__(self):
                self.index = {}

            def on_event(self, key, value):
                self.index[key] = value

            def forget(self, key):
                del self.index[key]
        """)
    report = run_lint(root=tmp_path, rule_ids=["unbounded-growth"])
    assert {f.key for f in report.findings} == {"ByKey.index"}
