"""Unit tests for table/figure rendering."""

from repro.analysis.primitives import PrimitiveRow, table1_rows
from repro.analysis.stats import summarize
from repro.bench.figures import MulticastComparison, RpcBreakdown
from repro.bench.report import (
    render_multicast,
    render_primitive_table,
    render_rpc_breakdown,
    render_table,
)


def test_render_table_aligns_columns():
    text = render_table("T", ["A", "LONG HEADER"],
                        [("x", "1"), ("longer-cell", "2")])
    lines = text.splitlines()
    assert lines[0] == "T"
    header, rule, row1, row2 = lines[2:6]
    assert header.index("LONG HEADER") == row1.index("1")
    assert len(set(len(l.rstrip()) for l in (header,))) == 1


def test_render_table_stringifies_cells():
    text = render_table("T", ["N"], [(42,)])
    assert "42" in text


def test_render_primitive_table():
    text = render_primitive_table("Table 1", table1_rows())
    assert "Procedure call" in text
    assert "us" in text and "ms" in text


def test_primitive_row_formatting():
    assert "us" in PrimitiveRow("x", 12.0, "us").formatted()
    assert "ms" in PrimitiveRow("x", 1.5, "ms").formatted()


def test_render_rpc_breakdown_includes_measured_row():
    result = RpcBreakdown(measured_mean_ms=29.0, measured_n=100,
                          components=[PrimitiveRow("Total Camelot RPC",
                                                   28.5, "ms")])
    text = render_rpc_breakdown(result)
    assert "Measured (mean of 100 RPCs)" in text
    assert "29.0" in text


def test_render_multicast_reports_reduction():
    comparison = MulticastComparison(
        unicast=summarize([100.0, 120.0, 80.0]),
        multicast=summarize([99.0, 101.0, 100.0]))
    text = render_multicast(comparison)
    assert "stddev reduction" in text
    assert comparison.variance_reduction > 0.9
