"""Unit tests for the write-ahead log, disk model, and stable storage."""

import pytest

from repro.config import rt_pc_profile
from repro.log.disk import DiskModel
from repro.log.records import commit_record, update_record
from repro.log.storage import StableStore, StableStoreDirectory
from repro.log.wal import WriteAheadLog
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.sim.tracing import Tracer

from tests.conftest import run_proc


def build_wal(site="a"):
    k = Kernel()
    cost = rt_pc_profile()
    disk = DiskModel(k, cost)
    store = StableStore(site)
    wal = WriteAheadLog(k, cost, disk, store, site, Tracer())
    return k, wal, disk, store


# ------------------------------------------------------- stable store


def test_store_requires_lsn():
    store = StableStore("a")
    with pytest.raises(ValueError):
        store.append(commit_record("T1@a", "a"))


def test_store_roundtrips_records():
    store = StableStore("a")
    rec = update_record("T1@a", "a", "s", "x", 1, 2)
    rec.lsn = 1
    store.append(rec)
    got = list(store.records())
    assert len(got) == 1
    assert got[0].payload["new"] == 2
    assert got[0] is not rec  # deserialised copy, nothing shared


def test_store_last_lsn():
    store = StableStore("a")
    assert store.last_lsn() == 0
    rec = commit_record("T1@a", "a")
    rec.lsn = 42
    store.append(rec)
    assert store.last_lsn() == 42


def test_store_directory_is_per_site_and_stable():
    directory = StableStoreDirectory()
    a = directory.for_site("a")
    assert directory.for_site("a") is a
    directory.for_site("b")
    assert directory.sites() == ["a", "b"]


# ---------------------------------------------------------------- WAL


def test_append_assigns_monotonic_lsns():
    k, wal, disk, store = build_wal()
    r1 = wal.append(commit_record("T1@a", "a"))
    r2 = wal.append(commit_record("T2@a", "a"))
    assert (r1.lsn, r2.lsn) == (1, 2)
    assert wal.tail_lsn == 2


def test_append_is_volatile_until_forced():
    k, wal, disk, store = build_wal()
    wal.append(commit_record("T1@a", "a"))
    assert len(store) == 0
    assert not wal.is_durable(1)


def test_force_writes_through_and_takes_disk_time():
    k, wal, disk, store = build_wal()
    wal.append(commit_record("T1@a", "a"))

    def body():
        yield from wal.force(1)
        return k.now

    elapsed = run_proc(k, body())
    assert elapsed >= 15.0
    assert wal.is_durable(1)
    assert len(store) == 1


def test_force_covers_earlier_records():
    k, wal, disk, store = build_wal()
    wal.append(update_record("T1@a", "a", "s", "x", 0, 1))
    wal.append(commit_record("T1@a", "a"))

    def body():
        yield from wal.force(2)

    run_proc(k, body())
    kinds = [r.kind.value for r in store.records()]
    assert kinds == ["update", "commit"]
    assert disk.writes == 1  # one write covered both


def test_force_already_durable_is_free():
    k, wal, disk, store = build_wal()
    wal.append(commit_record("T1@a", "a"))

    def body():
        yield from wal.force(1)
        t_mid = k.now
        yield from wal.force(1)
        return (t_mid, k.now)

    t_mid, t_end = run_proc(k, body())
    assert t_mid == t_end
    assert disk.writes == 1


def test_unbatched_concurrent_forces_serialize():
    """Without group commit, N committers pay N serial disk writes."""
    k, wal, disk, store = build_wal()
    finished = []

    def committer(i):
        rec = wal.append(commit_record(f"T{i}@a", "a"))
        yield from wal.force(rec.lsn)
        finished.append(k.now)

    for i in range(3):
        Process(k, committer(i))
    k.run()
    assert disk.writes == 3
    assert finished[-1] >= 45.0


def test_partial_force_leaves_later_records_buffered():
    k, wal, disk, store = build_wal()
    wal.append(commit_record("T1@a", "a"))
    wal.append(commit_record("T2@a", "a"))

    def body():
        yield from wal.force(1)

    run_proc(k, body())
    assert wal.flushed_lsn == 1
    assert len(wal.buffered_records()) == 1


def test_lsn_continuity_across_restart():
    """A WAL rebuilt over the same store continues the LSN sequence."""
    k, wal, disk, store = build_wal()
    wal.append(commit_record("T1@a", "a"))

    def body():
        yield from wal.force(1)

    run_proc(k, body())
    # Simulate a crash: buffered tail lost, new WAL over the same store.
    wal2 = WriteAheadLog(k, rt_pc_profile(), disk, store, "a", Tracer())
    rec = wal2.append(commit_record("T2@a", "a"))
    assert rec.lsn == 2
    assert wal2.flushed_lsn == 1


def test_durability_watch_fires_after_flush():
    k, wal, disk, store = build_wal()
    rec = wal.append(commit_record("T1@a", "a"))
    fired = []
    wal.add_durability_watch(rec.lsn, lambda: fired.append(k.now))

    def body():
        yield from wal.force(rec.lsn)

    run_proc(k, body())
    k.run()
    assert len(fired) == 1
    assert fired[0] >= 15.0


def test_durability_watch_immediate_when_already_durable():
    k, wal, disk, store = build_wal()
    rec = wal.append(commit_record("T1@a", "a"))

    def body():
        yield from wal.force(rec.lsn)

    run_proc(k, body())
    fired = []
    wal.add_durability_watch(rec.lsn, lambda: fired.append(True))
    k.run()
    assert fired == [True]


# ---------------------------------------------------------------- disk


def test_disk_write_time_scales_with_bytes():
    k = Kernel()
    disk = DiskModel(k, rt_pc_profile())
    assert disk.write_time(0) == 15.0
    assert disk.write_time(10240) > 15.0


def test_disk_utilization_tracking():
    k = Kernel()
    disk = DiskModel(k, rt_pc_profile())

    def body():
        yield from disk.write(64)

    run_proc(k, body())
    assert disk.writes == 1
    assert disk.utilization(k.now) > 0.9
