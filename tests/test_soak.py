"""Soak test: a mixed workload with mid-run failures, checked globally.

Four sites run concurrent transfer transactions (both protocols, random
routes) while one site crashes and recovers mid-run.  At the end:

- **conservation**: no money was created or destroyed across all
  committed state (transfers are zero-sum);
- **agreement**: every transaction's tombstones are identical at every
  site that has one;
- **liveness**: locks are all free and the system still commits fresh
  transactions.
"""

import pytest

from repro import CamelotSystem, Outcome, ProtocolKind, SystemConfig
from repro.bench.workloads import transfer

SITES = ["a", "b", "c", "d"]
ACCOUNTS = {f"server0@{s}": {"acct": 1000} for s in SITES}
TOTAL = 1000 * len(SITES)


def build():
    return CamelotSystem(
        SystemConfig(sites={s: 1 for s in SITES}, seed=11),
        initial_objects={k: dict(v) for k, v in ACCOUNTS.items()})


def money_total(system):
    return sum(system.server(f"server0@{s}").peek("acct") or 0
               for s in SITES)


def driver(system, app, routes, protocol):
    def body():
        for src, dst in routes:
            try:
                tid = yield from app.begin(protocol=protocol)
                ok = yield from transfer(app, tid, f"server0@{src}", "acct",
                                         f"server0@{dst}", "acct", 10)
                if ok:
                    yield from app.commit(tid, protocol=protocol)
                else:
                    yield from app.abort(tid)
            except Exception:
                # Lost coordinator, timed-out operation, refused commit:
                # keep driving.  (ProcessKilled/GeneratorExit are
                # BaseException and must propagate.)
                continue

    return body


@pytest.mark.parametrize("crash_site", ["b", "a"])
def test_soak_with_crash_and_recovery(crash_site):
    system = build()
    rng_routes = [
        [("a", "b"), ("b", "c"), ("a", "c")],
        [("c", "d"), ("d", "a"), ("b", "d")],
        [("d", "b"), ("c", "a"), ("a", "d")],
    ]
    protocols = [ProtocolKind.TWO_PHASE, ProtocolKind.NON_BLOCKING,
                 ProtocolKind.TWO_PHASE]
    for i, (routes, protocol) in enumerate(zip(rng_routes, protocols)):
        app = system.application(SITES[i], name=f"driver{i}")
        system.spawn(driver(system, app, routes, protocol)(),
                     name=f"driver{i}")
    system.failures.crash_at(300.0, crash_site)
    system.failures.restart_at(6_000.0, crash_site)
    system.run_for(90_000.0)

    # Conservation: transfers are zero-sum over committed state.
    assert money_total(system) == TOTAL

    # Agreement: tombstones never conflict across sites.
    all_tids = set()
    for s in SITES:
        all_tids.update(system.tranman(s).tombstones)
    for tid in all_tids:
        outcomes = {system.tranman(s).tombstones[tid]
                    for s in SITES if tid in system.tranman(s).tombstones}
        assert len(outcomes) == 1, f"{tid}: {outcomes}"

    # Liveness: all locks free, and a fresh transaction still commits.
    for s in SITES:
        assert system.server(f"server0@{s}").locks.locked_objects() == [], s
    app = system.application("a", name="post")

    def fresh():
        tid = yield from app.begin()
        ok = yield from transfer(app, tid, "server0@a", "acct",
                                 "server0@d", "acct", 5)
        assert ok
        outcome = yield from app.commit(tid)
        return outcome

    assert system.run_process(fresh()) is Outcome.COMMITTED
    assert money_total(system) == TOTAL


def test_soak_no_failures_high_concurrency():
    """Nine concurrent drivers, no failures: pure serialization check."""
    system = build()
    for i in range(9):
        src = SITES[i % 4]
        dst = SITES[(i + 1) % 4]
        app = system.application(src, name=f"d{i}")
        routes = [(src, dst)] * 4
        system.spawn(driver(system, app, routes,
                            ProtocolKind.TWO_PHASE)(), name=f"d{i}")
    system.run_for(60_000.0)
    assert money_total(system) == TOTAL
    for s in SITES:
        assert system.server(f"server0@{s}").locks.locked_objects() == []
