"""Unit tests for the disk manager (logger + buffer pool)."""

import pytest

from repro import CamelotSystem, SystemConfig
from repro.log.records import commit_record, update_record
from repro.servers.diskman import WalProtocolError


@pytest.fixture
def system():
    return CamelotSystem(SystemConfig(sites={"a": 1}))


@pytest.fixture
def diskman(system):
    return system.runtime("a").diskman


def test_append_is_lazy(system, diskman):
    diskman.append(commit_record("T1@a", "a"))
    assert diskman.disk_writes == 0


def test_force_makes_durable(system, diskman):
    def body():
        rec = diskman.append(commit_record("T1@a", "a"))
        yield from diskman.force(rec.lsn)
        return diskman.wal.is_durable(rec.lsn)

    assert system.run_process(body())
    assert diskman.disk_writes == 1


def test_lazy_sweep_flushes_eventually(system, diskman):
    diskman.append(commit_record("T1@a", "a"))
    system.run_for(500.0)
    assert diskman.wal.flushed_lsn >= 1
    assert system.tracer.count("diskman.lazy_sweep") >= 1


def test_sweep_debounces_while_log_is_hot(system, diskman):
    """Appends keep arriving: the sweep waits for a quiet gap."""
    for i in range(3):
        system.kernel.schedule(i * 10.0, diskman.append,
                               commit_record(f"T{i}@a", "a"))
    system.run_for(24.0)  # constant traffic, still inside debounce
    assert diskman.wal.flushed_lsn == 0


def test_watch_durable_fires(system, diskman):
    fired = []
    rec = diskman.append(commit_record("T1@a", "a"))
    diskman.watch_durable(rec.lsn, lambda: fired.append(system.kernel.now))
    system.run_for(500.0)
    assert fired, "watch never fired"


def test_pageout_respects_wal_protocol(system, diskman):
    """A touched page whose log records are volatile forces the log
    before paging out — no WalProtocolError and both disks written."""
    rec = diskman.append(update_record("T1@a", "a", "s", "x", None, 1))
    diskman.touch_page("s", "x", 1, rec.lsn)
    system.run_for(1_200.0)
    assert system.tracer.count("diskman.pageout") >= 1
    assert diskman.wal.flushed_lsn >= rec.lsn
    assert diskman.data_disk.writes >= 1


def test_wal_protocol_assertion_guards_corruption(system, diskman):
    from repro.servers.diskman import _BufferedPage

    page = _BufferedPage("s/x")
    page.rec_lsn = 99  # far beyond anything durable
    with pytest.raises(WalProtocolError):
        diskman._assert_wal_protocol(page)


def test_group_commit_wiring(system):
    gc_system = CamelotSystem(SystemConfig(sites={"a": 1},
                                           group_commit=True))
    dm = gc_system.runtime("a").diskman
    assert dm.batcher.enabled
    dm2 = system.runtime("a").diskman
    assert not dm2.batcher.enabled
