"""Unit + property tests for the statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import (
    coefficient_of_variation,
    percentile,
    summarize,
)


def test_summarize_basic():
    s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
    assert s.n == 5
    assert s.mean == 3.0
    assert s.minimum == 1.0 and s.maximum == 5.0
    assert s.p50 == 3.0
    assert s.stdev == pytest.approx(math.sqrt(2.5))


def test_summarize_single_value():
    s = summarize([7.0])
    assert s.stdev == 0.0
    assert s.p95 == 7.0


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_paper_style_format():
    s = summarize([10.0, 12.0, 14.0])
    assert s.paper_style() == "12.0 (2)"


def test_ci_half_width():
    s = summarize([1.0] * 100)
    assert s.ci95_half_width() == 0.0
    s2 = summarize(list(range(100)))
    assert s2.ci95_half_width() > 0


def test_percentile_interpolates():
    data = [0.0, 10.0]
    assert percentile(data, 0.5) == 5.0
    assert percentile(data, 0.0) == 0.0
    assert percentile(data, 1.0) == 10.0


def test_percentile_empty_rejected():
    with pytest.raises(ValueError):
        percentile([], 0.5)


def test_coefficient_of_variation():
    assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0
    assert coefficient_of_variation([1.0, 9.0]) > 0.5


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=50))
def test_summary_bounds_property(values):
    s = summarize(values)
    eps = 1e-6 * max(1.0, abs(s.minimum), abs(s.maximum))
    assert s.minimum - eps <= s.mean <= s.maximum + eps
    assert s.minimum - eps <= s.p50 <= s.maximum + eps
    assert s.stdev >= 0
