"""Unit tests for simulated locks, semaphores, channels, conditions."""

import pytest

from repro.sim.kernel import Kernel, SimulationError
from repro.sim.process import Process, Sleep
from repro.sim.resources import Channel, Condition, Semaphore, SimLock

from tests.conftest import run_proc


# ------------------------------------------------------------- SimLock


def test_lock_mutual_exclusion():
    k = Kernel()
    lock = SimLock(k)
    timeline = []

    def worker(name, hold):
        yield from lock.acquire(owner=name)
        timeline.append((name, "in", k.now))
        yield Sleep(hold)
        timeline.append((name, "out", k.now))
        lock.release()

    Process(k, worker("a", 10.0))
    Process(k, worker("b", 5.0))
    k.run()
    # b enters only after a leaves.
    assert timeline == [("a", "in", 0.0), ("a", "out", 10.0),
                        ("b", "in", 10.0), ("b", "out", 15.0)]


def test_lock_fifo_order():
    k = Kernel()
    lock = SimLock(k)
    order = []

    def worker(name):
        yield from lock.acquire(owner=name)
        order.append(name)
        yield Sleep(1.0)
        lock.release()

    for name in ("w1", "w2", "w3"):
        Process(k, worker(name))
    k.run()
    assert order == ["w1", "w2", "w3"]


def test_lock_self_deadlock_detected():
    k = Kernel()
    lock = SimLock(k, name="l")

    def body():
        yield from lock.acquire(owner="me")
        yield from lock.acquire(owner="me")

    Process(k, body())
    with pytest.raises(SimulationError, match="self-deadlock"):
        k.run()


def test_release_unheld_lock_raises():
    k = Kernel()
    with pytest.raises(SimulationError):
        SimLock(k).release()


def test_try_acquire():
    k = Kernel()
    lock = SimLock(k)
    assert lock.try_acquire(owner="a")
    assert not lock.try_acquire(owner="b")
    lock.release()
    assert lock.try_acquire(owner="b")


# ----------------------------------------------------------- Semaphore


def test_semaphore_counts():
    k = Kernel()
    sem = Semaphore(k, value=2)
    entered = []

    def worker(name):
        yield from sem.down()
        entered.append((name, k.now))
        yield Sleep(10.0)
        sem.up()

    for name in ("a", "b", "c"):
        Process(k, worker(name))
    k.run()
    times = dict(entered)
    assert times["a"] == 0.0 and times["b"] == 0.0
    assert times["c"] == 10.0


def test_semaphore_up_wakes_waiter_directly():
    k = Kernel()
    sem = Semaphore(k, value=0)
    woke = []

    def waiter():
        yield from sem.down()
        woke.append(k.now)

    Process(k, waiter())
    k.schedule(5.0, sem.up)
    k.run()
    assert woke == [5.0]
    assert sem.value == 0


def test_semaphore_negative_initial_rejected():
    with pytest.raises(SimulationError):
        Semaphore(Kernel(), value=-1)


# ------------------------------------------------------------- Channel


def test_channel_fifo():
    k = Kernel()
    chan = Channel(k)
    chan.put(1)
    chan.put(2)

    def body():
        a = yield from chan.get()
        b = yield from chan.get()
        return (a, b)

    assert run_proc(k, body()) == (1, 2)


def test_channel_get_blocks_until_put():
    k = Kernel()
    chan = Channel(k)

    def body():
        item = yield from chan.get()
        return (item, k.now)

    proc = Process(k, body())
    k.schedule(8.0, chan.put, "x")
    k.run()
    assert proc.done.value == ("x", 8.0)


def test_channel_multiple_getters_fifo():
    k = Kernel()
    chan = Channel(k)
    got = []

    def getter(name):
        item = yield from chan.get()
        got.append((name, item))

    Process(k, getter("g1"))
    Process(k, getter("g2"))
    k.schedule(1.0, chan.put, "first")
    k.schedule(2.0, chan.put, "second")
    k.run()
    assert got == [("g1", "first"), ("g2", "second")]


def test_channel_put_front():
    k = Kernel()
    chan = Channel(k)
    chan.put("b")
    chan.put_front("a")
    ok, item = chan.try_get()
    assert ok and item == "a"


def test_channel_try_get_empty():
    assert Channel(Kernel()).try_get() == (False, None)


def test_channel_drain():
    k = Kernel()
    chan = Channel(k)
    chan.put(1)
    chan.put(2)
    assert chan.drain() == [1, 2]
    assert len(chan) == 0


# ----------------------------------------------------------- Condition


def test_condition_wait_signal():
    k = Kernel()
    lock = SimLock(k)
    cond = Condition(k, lock)
    state = {"ready": False}
    seen = []

    def waiter():
        yield from lock.acquire(owner="w")
        while not state["ready"]:
            yield from cond.wait(owner="w")
        seen.append(k.now)
        lock.release()

    def signaler():
        yield Sleep(10.0)
        yield from lock.acquire(owner="s")
        state["ready"] = True
        cond.signal()
        lock.release()

    Process(k, waiter())
    Process(k, signaler())
    k.run()
    assert seen == [10.0]


def test_condition_broadcast_wakes_all():
    k = Kernel()
    lock = SimLock(k)
    cond = Condition(k, lock)
    woke = []

    def waiter(name):
        yield from lock.acquire(owner=name)
        yield from cond.wait(owner=name)
        woke.append(name)
        lock.release()

    for name in ("a", "b", "c"):
        Process(k, waiter(name))

    def broadcaster():
        yield Sleep(5.0)
        yield from lock.acquire(owner="bc")
        cond.broadcast()
        lock.release()

    Process(k, broadcaster())
    k.run()
    assert sorted(woke) == ["a", "b", "c"]
