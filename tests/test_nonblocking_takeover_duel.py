"""Dueling takeover coordinators: quorum exclusivity under contention.

Two takeovers race to finish one transaction from opposite intents —
one holds a replication record and promotes toward commit, the other
holds nothing and collects abort pledges.  Change 4 (no site joins both
quorums) is the only thing standing between them and a split brain;
these tests drive the race by hand through every interleaving class.
"""


from repro.core.messages import (
    NbAbortJoin,
    NbAbortJoinAck,
    NbOutcome,
    NbReplicate,
    NbReplicateAck,
    NbStateReport,
)
from repro.core.nonblocking import (
    NB_TAKEOVER_TIMER,
    NbSubState,
    NbSubordinate,
    NbTakeover,
)
from repro.core.outcomes import Outcome, Vote
from repro.core.quorum import QuorumSpec
from repro.core.tid import TID

from tests.machine_harness import MachineHost

TID1 = TID("T1@a")
SITES5 = ["a", "b", "c", "d", "e"]
Q5 = QuorumSpec.majority(5)  # Qc=3, Qa=3


def decision_data():
    return {
        "tid": str(TID1), "coordinator": "a", "sites": SITES5,
        "quorum": Q5.to_dict(),
        "votes": {s: "yes" for s in SITES5},
        "replication_targets": SITES5,
    }


def prepared_sub(site):
    host = MachineHost(NbSubordinate(TID1, site, "a", SITES5, Q5)).start()
    host.local_prepared(Vote.YES)
    host.complete_force()
    return host


def test_contested_site_joins_exactly_one_quorum():
    """A prepared site receives a promotion and an abort-join back to
    back; whichever force completes wins, the other is refused."""
    sub = prepared_sub("c")
    sub.deliver(NbReplicate(tid=TID1, sender="b",
                            decision_data=decision_data()))
    # The pledge request arrives while the replication force is in
    # flight: refused outright (FORCING_REPLICATION counts as joined).
    sub.deliver(NbAbortJoin(tid=TID1, sender="d"))
    join_acks = [m for _, m in sub.sent if isinstance(m, NbAbortJoinAck)]
    assert join_acks and not join_acks[0].ok
    sub.complete_force()
    repl_acks = [m for _, m in sub.sent if isinstance(m, NbReplicateAck)]
    assert repl_acks and repl_acks[0].ok
    assert sub.machine.state is NbSubState.REPLICATED


def test_contested_site_pledge_first():
    sub = prepared_sub("c")
    sub.deliver(NbAbortJoin(tid=TID1, sender="d"))
    sub.deliver(NbReplicate(tid=TID1, sender="b",
                            decision_data=decision_data()))
    repl_acks = [m for _, m in sub.sent if isinstance(m, NbReplicateAck)]
    assert repl_acks == []  # pledge force in flight: replicate ignored
    sub.complete_force()
    assert sub.machine.state is NbSubState.PLEDGED
    # A retried promotion is now firmly refused.
    sub.deliver(NbReplicate(tid=TID1, sender="b",
                            decision_data=decision_data()))
    repl_acks = [m for _, m in sub.sent if isinstance(m, NbReplicateAck)]
    assert repl_acks and not repl_acks[0].ok


def test_commit_side_wins_race_when_it_reaches_quorum_first():
    """Promoter (b, replicated) vs pledger (d, prepared): b reaches
    Qc=3 via two promotions; d can then gather at most 2 pledges of the
    needed 3 and stays undecided until it hears the outcome."""
    promoter = MachineHost(NbTakeover(
        TID1, "b", SITES5, Q5, own_status="replicated",
        own_decision_data=decision_data())).start()
    pledger = MachineHost(NbTakeover(
        TID1, "d", SITES5, Q5, own_status="prepared")).start()

    # Promoter's poll: c and e report prepared; a is unreachable.
    promoter.deliver(NbStateReport(tid=TID1, sender="c", status="prepared",
                                   round=1))
    promoter.deliver(NbStateReport(tid=TID1, sender="e", status="prepared",
                                   round=1))
    promoter.fire_timer(NB_TAKEOVER_TIMER)
    # c and e accept promotion (they had not pledged).
    promoter.deliver(NbReplicateAck(tid=TID1, sender="c", ok=True))
    assert promoter.machine.outcome is None  # 2 of 3
    promoter.deliver(NbReplicateAck(tid=TID1, sender="e", ok=True))
    assert promoter.machine.outcome is Outcome.COMMITTED

    # Pledger meanwhile polled and went for the abort quorum...
    pledger.deliver(NbStateReport(tid=TID1, sender="c", status="prepared",
                                  round=1))
    pledger.deliver(NbStateReport(tid=TID1, sender="e", status="prepared",
                                  round=1))
    pledger.fire_timer(NB_TAKEOVER_TIMER)
    pledger.complete_force()  # own pledge: 1 of 3
    # ...but c and e joined the commit quorum and refuse.
    pledger.deliver(NbAbortJoinAck(tid=TID1, sender="c", ok=False))
    pledger.deliver(NbAbortJoinAck(tid=TID1, sender="e", ok=False))
    assert pledger.machine.outcome is None  # cannot complete Qa
    # The promoter's outcome reaches it; it stands down in agreement.
    pledger.deliver(NbOutcome(tid=TID1, sender="b",
                              outcome=Outcome.COMMITTED))
    assert pledger.machine.outcome is Outcome.COMMITTED


def test_abort_side_wins_race_and_starves_commit():
    """Pledger reaches Qa=3 first; the promoter then cannot assemble
    Qc=3 (two of its targets refuse) and adopts the abort."""
    pledger = MachineHost(NbTakeover(
        TID1, "d", SITES5, Q5, own_status="prepared")).start()
    promoter = MachineHost(NbTakeover(
        TID1, "b", SITES5, Q5, own_status="replicated",
        own_decision_data=decision_data())).start()

    pledger.deliver(NbStateReport(tid=TID1, sender="c", status="prepared",
                                  round=1))
    pledger.deliver(NbStateReport(tid=TID1, sender="e", status="prepared",
                                  round=1))
    pledger.fire_timer(NB_TAKEOVER_TIMER)
    pledger.complete_force()
    pledger.deliver(NbAbortJoinAck(tid=TID1, sender="c", ok=True))
    pledger.deliver(NbAbortJoinAck(tid=TID1, sender="e", ok=True))
    assert pledger.machine.outcome is Outcome.ABORTED

    promoter.deliver(NbStateReport(tid=TID1, sender="c", status="prepared",
                                   round=1))
    promoter.deliver(NbStateReport(tid=TID1, sender="e", status="prepared",
                                   round=1))
    promoter.fire_timer(NB_TAKEOVER_TIMER)
    promoter.deliver(NbReplicateAck(tid=TID1, sender="c", ok=False))
    promoter.deliver(NbReplicateAck(tid=TID1, sender="e", ok=False))
    assert promoter.machine.outcome is None  # 1 < Qc, cannot commit
    promoter.deliver(NbOutcome(tid=TID1, sender="d",
                               outcome=Outcome.ABORTED))
    assert promoter.machine.outcome is Outcome.ABORTED


def test_both_quorums_cannot_complete_even_adversarially():
    """Brute-force the split-brain boundary: however the five sites'
    memberships are assigned (exclusively), commit and abort can never
    both be satisfiable."""
    for replicated_count in range(6):
        for pledged_count in range(6 - replicated_count):
            assert not (Q5.can_commit(replicated_count)
                        and Q5.can_abort(pledged_count))


def test_takeover_round_counter_distinguishes_polls():
    takeover = MachineHost(NbTakeover(TID1, "b", SITES5, Q5,
                                      own_status="prepared")).start()
    takeover.fire_timer(NB_TAKEOVER_TIMER)   # nothing heard: evaluates,
    takeover.fire_timer(NB_TAKEOVER_TIMER)   # blocked, then re-polls
    from repro.core.messages import NbStateRequest

    requests = [m for _, m in takeover.sent
                if isinstance(m, NbStateRequest)]
    rounds = {m.round for m in requests}
    assert len(rounds) >= 2
    # One dedup key per round (shared across destinations — receivers
    # deduplicate per source, so that is exactly right): a fresh poll is
    # never mistaken for a wire duplicate of the previous one.
    keys = {m.dedup_key for m in requests}
    assert len(keys) == len(rounds)


def test_stale_round_report_still_counts_durable_facts():
    """Reports are facts about durable state, not round-scoped; a late
    report from an earlier poll still advances the takeover."""
    takeover = MachineHost(NbTakeover(
        TID1, "b", SITES5, Q5, own_status="replicated",
        own_decision_data=decision_data())).start()
    takeover.deliver(NbStateReport(tid=TID1, sender="c",
                                   status="replicated",
                                   decision_data=decision_data(),
                                   round=0))  # stale round
    takeover.deliver(NbStateReport(tid=TID1, sender="d",
                                   status="replicated", round=0))
    assert takeover.machine.outcome is Outcome.COMMITTED
