"""python -m repro.obs: exit codes, report output, trace export."""

import json

import pytest

from repro.obs.__main__ import build_parser, main


def test_stock_scenario_passes_and_prints_table(capsys):
    assert main(["update-1sub", "--trials", "3"]) == 0
    out = capsys.readouterr().out
    assert "critical-path breakdown" in out
    assert "static prediction" in out
    assert "self-checks:" in out and "FAIL" not in out
    assert "bottleneck:" in out


def test_default_scenario_is_stock_update(capsys):
    args = build_parser().parse_args([])
    assert args.scenario == "update-1sub"
    assert args.keep == "spans"


def test_local_scenarios_pass(capsys):
    assert main(["local-update", "--trials", "3"]) == 0
    assert main(["local-read", "--trials", "3"]) == 0


def test_count_only_mode(capsys):
    assert main(["update-1sub", "--trials", "3", "--keep", "counts"]) == 0
    out = capsys.readouterr().out
    assert "count-only" in out
    assert "log.force" in out
    assert "spans balanced: ok" in out
    # Count mode prints no attribution table.
    assert "critical-path breakdown" not in out


def test_trace_export(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    assert main(["update-1sub", "--trials", "2",
                 "--trace", str(trace)]) == 0
    doc = json.loads(trace.read_text())
    assert doc["displayTimeUnit"] == "ms"
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert {"X", "M"} <= phases
    assert "wrote" in capsys.readouterr().out


def test_figure4_names_logger_bottleneck(capsys):
    assert main(["figure4"]) == 0
    out = capsys.readouterr().out
    assert "bottleneck: a.logdisk" in out
    assert "logger saturated: ok" in out


def test_unknown_scenario_is_usage_error():
    with pytest.raises(SystemExit) as err:
        main(["no-such-scenario"])
    assert err.value.code == 2
