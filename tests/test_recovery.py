"""Recovery: pure log analysis plus crash/restart integration."""


from repro import CamelotSystem, Outcome, ProtocolKind, SystemConfig, TID
from repro.core.quorum import QuorumSpec
from repro.log.records import (
    abort_pledge_record,
    abort_record,
    commit_record,
    coordinator_commit_record,
    end_record,
    paxos_acceptor_record,
    paxos_decision_record,
    paxos_prepare_record,
    prepare_record,
    replication_record,
    update_record,
)
from repro.servers.recovery import analyze, build_machines


def with_lsns(records):
    for i, rec in enumerate(records, start=1):
        rec.lsn = i
    return records


# --------------------------------------------------------- analyze()


def test_committed_updates_redone():
    records = with_lsns([
        update_record("T1@a", "a", "s0", "x", None, 5),
        update_record("T1@a", "a", "s0", "y", None, 6),
        coordinator_commit_record("T1@a", "a", []),
    ])
    plan = analyze("a", records)
    assert plan.redo_values == {"s0": {"x": 5, "y": 6}}
    assert plan.tombstones == {"T1@a": Outcome.COMMITTED}
    assert plan.in_doubt == []


def test_unresolved_updates_not_redone_but_pending():
    records = with_lsns([
        update_record("T1@a", "b", "s0", "x", None, 5),
        prepare_record("T1@a", "b", "a"),
    ])
    plan = analyze("b", records)
    assert plan.redo_values == {}
    assert plan.pending_redo == {"T1@a": [("s0", "x", 5)]}
    assert len(plan.in_doubt) == 1
    assert plan.in_doubt[0].protocol == "two_phase"
    assert plan.in_doubt[0].coordinator == "a"


def test_active_transaction_without_prepare_is_aborted():
    """Updates but no prepare record: crash aborted it (presumed abort);
    nothing is redone and nothing is in doubt."""
    records = with_lsns([
        update_record("T1@a", "a", "s0", "x", None, 5),
    ])
    plan = analyze("a", records)
    assert plan.redo_values == {}
    assert plan.in_doubt == []
    assert plan.pending_redo == {}


def test_aborted_subtree_updates_excluded_from_redo():
    child = str(TID("T1@a").child(1))
    records = with_lsns([
        update_record("T1@a", "a", "s0", "x", None, 1),
        update_record(child, "a", "s0", "y", None, 2),
        abort_record(child, "a"),
        coordinator_commit_record("T1@a", "a", []),
    ])
    plan = analyze("a", records)
    assert plan.redo_values == {"s0": {"x": 1}}


def test_last_committed_write_wins():
    records = with_lsns([
        update_record("T1@a", "a", "s0", "x", None, 1),
        coordinator_commit_record("T1@a", "a", []),
        update_record("T2@a", "a", "s0", "x", 1, 2),
        commit_record("T2@a", "a"),
    ])
    plan = analyze("a", records)
    assert plan.redo_values == {"s0": {"x": 2}}


def test_nb_in_doubt_carries_quorum_and_replication():
    quorum = QuorumSpec.majority(3)
    records = with_lsns([
        prepare_record("T1@a", "b", "a", sites=["a", "b", "c"],
                       quorum_sizes=quorum.to_dict()),
        replication_record("T1@a", "b", {"coordinator": "a"}),
    ])
    plan = analyze("b", records)
    entry = plan.in_doubt[0]
    assert entry.protocol == "non_blocking"
    assert entry.replicated
    assert entry.decision_data == {"coordinator": "a"}
    assert entry.quorum["commit_quorum"] == 2


def test_pledge_recovered():
    records = with_lsns([
        prepare_record("T1@a", "b", "a", sites=["a", "b"],
                       quorum_sizes=QuorumSpec.majority(2).to_dict()),
        abort_pledge_record("T1@a", "b"),
    ])
    plan = analyze("b", records)
    assert plan.pledges == {"T1@a"}
    assert plan.in_doubt[0].pledged


def test_coordinator_commit_without_end_is_unacked():
    records = with_lsns([
        coordinator_commit_record("T1@a", "a", ["b", "c"]),
    ])
    plan = analyze("a", records)
    assert len(plan.unacked_commits) == 1
    assert plan.unacked_commits[0].pending_subordinates == ["b", "c"]


def test_end_record_closes_everything():
    records = with_lsns([
        prepare_record("T1@a", "b", "a"),
        commit_record("T1@a", "b"),
        end_record("T1@a", "b"),
    ])
    plan = analyze("b", records)
    assert plan.in_doubt == [] and plan.unacked_commits == []


def test_build_machines_for_2pc_in_doubt():
    records = with_lsns([
        update_record("T1@a", "b", "s0", "x", None, 5),
        prepare_record("T1@a", "b", "a"),
    ])
    plan = analyze("b", records)
    machines = build_machines(plan, "b")
    assert len(machines) == 1
    machine, effects = machines[0]
    assert type(machine).__name__ == "TwoPhaseSubordinate"
    assert effects  # resume inquiry


def test_build_machines_for_nb_in_doubt_spawns_takeover():
    quorum = QuorumSpec.majority(3)
    records = with_lsns([
        prepare_record("T1@a", "b", "a", sites=["a", "b", "c"],
                       quorum_sizes=quorum.to_dict()),
    ])
    plan = analyze("b", records)
    machines = build_machines(plan, "b")
    names = sorted(type(m).__name__ for m, _ in machines)
    assert names == ["NbSubordinate", "NbTakeover"]


# ------------------------------------------------------- paxos commit


def test_paxos_in_doubt_rebuilds_participant_with_acceptor_state():
    records = with_lsns([
        paxos_prepare_record("T1@a", "b", "a", ["a", "b", "c"],
                             ["a", "b", "c"]),
        paxos_acceptor_record("T1@a", "b", 0,
                              [["b", 0, "yes"], ["c", 0, "yes"]],
                              leader="a", sites=["a", "b", "c"],
                              acceptors=["a", "b", "c"]),
    ])
    plan = analyze("b", records)
    entry = plan.in_doubt[0]
    assert entry.protocol == "paxos_commit"
    assert entry.coordinator == "a"
    assert entry.acceptors == ["a", "b", "c"]
    assert entry.prepared
    machines = build_machines(plan, "b")
    assert len(machines) == 1
    machine, effects = machines[0]
    assert type(machine).__name__ == "PcParticipant"
    assert machine.vote is not None                 # prepared: re-votes
    assert machine.acceptor.accepted["c"] == (0, "yes")
    assert effects                                  # resume_inquiry


def test_paxos_acceptor_record_alone_rebuilds_silent_acceptor():
    """No prepare record: the RM never voted (or voted read-only), and
    recovery must not invent a vote — ballot-0 proposer uniqueness.
    The rebuilt participant owes acceptor duties only."""
    records = with_lsns([
        paxos_acceptor_record("T1@a", "c", 4, [["b", 0, "yes"]],
                              leader="a", sites=["a", "b", "c"],
                              acceptors=["a", "b", "c"]),
    ])
    plan = analyze("c", records)
    entry = plan.in_doubt[0]
    assert entry.protocol == "paxos_commit"
    assert not entry.prepared
    machines = build_machines(plan, "c")
    machine, _ = machines[0]
    assert type(machine).__name__ == "PcParticipant"
    assert machine.vote is None
    assert machine.acceptor.promised == 4


def test_paxos_decision_without_end_rebuilds_notifying_leader():
    records = with_lsns([
        paxos_decision_record("T1@a", "a", ["b", "c"], ["a", "b", "c"]),
    ])
    plan = analyze("a", records)
    assert plan.tombstones == {"T1@a": Outcome.COMMITTED}
    unacked = plan.unacked_commits[0]
    assert unacked.protocol == "paxos_commit"
    assert unacked.acceptors == ["a", "b", "c"]
    machines = build_machines(plan, "a")
    machine, effects = machines[0]
    assert type(machine).__name__ == "PcLeader"
    assert sorted(machine.notify_targets) == ["b", "c"]
    assert effects                                  # resume_notifications


def test_paxos_decision_at_non_acceptor_site_resumes_candidate():
    """A winning candidate need not be an acceptor (with >= 4 sites the
    acceptor set is the odd prefix): its forced decision record must
    rebuild a notifying candidate, not a PcLeader — whose constructor
    rejects a site outside the acceptor set and would crash recovery."""
    records = with_lsns([
        paxos_decision_record("T1@a", "d", ["a", "b"], ["a", "b", "c"]),
    ])
    plan = analyze("d", records)
    unacked = plan.unacked_commits[0]
    assert unacked.protocol == "paxos_commit"
    machines = build_machines(plan, "d")
    machine, effects = machines[0]
    assert type(machine).__name__ == "PcCandidate"
    assert machine.outcome is Outcome.COMMITTED
    assert sorted(machine.notify_targets) == ["a", "b"]
    assert effects                                  # notify phase resumes


def test_paxos_end_record_closes_everything():
    records = with_lsns([
        paxos_prepare_record("T1@a", "b", "a", ["a", "b"], ["a"]),
        commit_record("T1@a", "b"),
        end_record("T1@a", "b"),
    ])
    plan = analyze("b", records)
    assert plan.in_doubt == [] and plan.unacked_commits == []


# -------------------------------------------------- crash + restart


def committed_then_crash(system):
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "x", 7)
        yield from app.write(tid, "server0@a", "y", 8)
        outcome = yield from app.commit(tid)
        return outcome

    assert system.run_process(workload()) is Outcome.COMMITTED


def test_committed_values_survive_crash_restart():
    system = CamelotSystem(SystemConfig(sites={"a": 1}))
    committed_then_crash(system)
    system.crash_site("a")
    system.restart_site("a")
    system.run_for(1_000.0)
    assert system.server("server0@a").peek("x") == 7
    assert system.server("server0@a").peek("y") == 8


def test_uncommitted_transaction_lost_on_crash():
    system = CamelotSystem(SystemConfig(sites={"a": 1}))
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "x", 99)
        # No commit: crash happens mid-transaction.

    system.run_process(workload())
    system.crash_site("a")
    system.restart_site("a")
    system.run_for(1_000.0)
    assert system.server("server0@a").peek("x") is None


def test_tombstones_rebuilt_from_log():
    system = CamelotSystem(SystemConfig(sites={"a": 1}))
    committed_then_crash(system)
    system.run_for(500.0)  # lazy records flushed
    system.crash_site("a")
    system.restart_site("a")
    tm = system.tranman("a")
    assert any(o is Outcome.COMMITTED for o in tm.tombstones.values())


def test_subordinate_crash_after_prepare_resolves_in_doubt_commit():
    """Sub crashes prepared; coordinator committed meanwhile.  On
    restart, recovery inquires, learns committed, and redoes the
    in-doubt updates."""
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))
    app = system.application("a")
    state = {}

    def workload():
        tid = yield from app.begin()
        state["tid"] = str(tid)
        yield from app.write(tid, "server0@a", "x", 1)
        yield from app.write(tid, "server0@b", "x", 2)
        outcome = yield from app.commit(tid)
        state["outcome"] = outcome

    system.spawn(workload(), name="txn")
    # b votes ~t=95; its lazy commit record will not be durable yet when
    # it crashes right after the coordinator decided.
    system.failures.crash_at(118.0, "b")
    system.failures.restart_at(3_000.0, "b")
    system.run_for(60_000.0)
    if state.get("outcome") is Outcome.COMMITTED:
        assert system.server("server0@b").peek("x") == 2
        assert system.tranman("b").tombstones.get(
            state["tid"]) is Outcome.COMMITTED


def test_nb_site_crash_restart_rejoins_via_takeover():
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1, "c": 1}))
    app = system.application("a")
    state = {}

    def workload():
        tid = yield from app.begin(protocol=ProtocolKind.NON_BLOCKING)
        state["tid"] = str(tid)
        for s in system.default_services():
            yield from app.write(tid, s, "x", 3)
        outcome = yield from app.commit(tid,
                                        protocol=ProtocolKind.NON_BLOCKING)
        state["outcome"] = outcome

    system.spawn(workload(), name="txn")
    system.failures.crash_at(165.0, "b")
    system.failures.restart_at(5_000.0, "b")
    system.run_for(80_000.0)
    tid = state["tid"]
    outcomes = {s: system.tranman(s).tombstones.get(tid)
                for s in ("a", "b", "c")}
    assert len(set(outcomes.values())) == 1
    assert None not in outcomes.values()
    if outcomes["b"] is Outcome.COMMITTED:
        assert system.server("server0@b").peek("x") == 3


def test_wal_protocol_enforced_after_restart():
    """The page image on disk never runs ahead of the log, even across
    crash/restart cycles (the disk manager asserts this internally)."""
    system = CamelotSystem(SystemConfig(sites={"a": 1}))
    for round_no in range(3):
        app = system.application("a", name=f"app{round_no}")

        def workload():
            tid = yield from app.begin()
            yield from app.write(tid, "server0@a", "x", round_no)
            yield from app.commit(tid)

        system.run_process(workload())
        system.run_for(1_500.0)  # pageout cycles run
        system.crash_site("a")
        system.restart_site("a")
    system.run_for(2_000.0)
    assert system.server("server0@a").peek("x") == 2
