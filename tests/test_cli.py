"""The `python -m repro` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_names_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert set(out) == set(EXPERIMENTS)


def test_table1_runs(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Benchmarks of PC-RT and Mach" in out
    assert "19.1" in out


def test_contention_with_trials(capsys):
    assert main(["contention", "--trials", "10"]) == 0
    out = capsys.readouterr().out
    assert "unoptimized" in out


def test_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["figure99"])


def test_module_invocation_end_to_end():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "table1"],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0
    assert "Table 1" in result.stdout
