"""The `python -m repro` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_names_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert set(out) == set(EXPERIMENTS)


def test_table1_runs(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Benchmarks of PC-RT and Mach" in out
    assert "19.1" in out


def test_contention_with_trials(capsys):
    assert main(["contention", "--trials", "10"]) == 0
    out = capsys.readouterr().out
    assert "unoptimized" in out


def test_jobs_flag_matches_serial_output(tmp_path, capsys):
    assert main(["multicast", "--trials", "2", "--no-cache"]) == 0
    serial = capsys.readouterr().out
    assert main(["multicast", "--trials", "2", "--no-cache",
                 "--jobs", "2"]) == 0
    fanned = capsys.readouterr().out
    assert serial == fanned
    assert "Multicast" in serial


def test_trials_scale_multiplies_trials(capsys):
    # contention prints lock-wait counts proportional to txns; scaling
    # trials 2x must match passing the doubled count directly.
    assert main(["contention", "--trials", "4", "--trials-scale", "2"]) == 0
    scaled = capsys.readouterr().out
    assert main(["contention", "--trials", "8"]) == 0
    direct = capsys.readouterr().out
    assert scaled == direct


def test_cache_roundtrip_via_cli(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["multicast", "--trials", "2",
                 "--cache-dir", cache_dir]) == 0
    cold = capsys.readouterr().out
    assert list((tmp_path / "cache").glob("*.pkl"))
    assert main(["multicast", "--trials", "2",
                 "--cache-dir", cache_dir]) == 0
    warm = capsys.readouterr().out
    assert cold == warm


def test_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["figure99"])


def test_module_invocation_end_to_end():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "table1"],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0
    assert "Table 1" in result.stdout
