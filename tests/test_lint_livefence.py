"""live-io-fence: asyncio/socket/selectors/os.fsync stay inside
repro/live.  Seeded-negative trees prove the rule fires on every leak
form; the real tree must be clean with no baseline entries — the fence,
like flow-sansio-purity, holds at zero."""

import textwrap
from pathlib import Path

from repro.lint import run_lint


def _write(root: Path, rel: str, source: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))


def _fence(root: Path):
    report = run_lint(root=root, rule_ids=["live-io-fence"])
    return [f for f in report.findings if f.rule == "live-io-fence"]


class TestSeededLeaks:
    def test_plain_import_asyncio_outside_live(self, tmp_path):
        _write(tmp_path, "net/fastpath.py", """
            import asyncio

            def go():
                return asyncio.get_event_loop()
            """)
        findings = _fence(tmp_path)
        assert len(findings) == 1
        assert "asyncio" in findings[0].message

    def test_from_socket_import(self, tmp_path):
        _write(tmp_path, "servers/push.py", """
            from socket import create_connection
            """)
        assert len(_fence(tmp_path)) == 1

    def test_submodule_and_selectors(self, tmp_path):
        _write(tmp_path, "sim/poller.py", """
            import selectors
            import asyncio.streams
            """)
        assert len(_fence(tmp_path)) == 2

    def test_from_os_import_fsync(self, tmp_path):
        _write(tmp_path, "log/disk.py", """
            from os import fsync

            def flush(fh):
                fsync(fh.fileno())
            """)
        findings = _fence(tmp_path)
        assert len(findings) == 1
        assert "force" in findings[0].message  # points at the vocabulary

    def test_os_fsync_attribute(self, tmp_path):
        _write(tmp_path, "log/disk.py", """
            import os

            def flush(fh):
                os.fsync(fh.fileno())
            """)
        assert len(_fence(tmp_path)) == 1

    def test_method_named_fsync_flagged_too(self, tmp_path):
        _write(tmp_path, "log/disk.py", """
            def flush(wal):
                wal.fsync()
            """)
        assert len(_fence(tmp_path)) == 1

    def test_function_call_named_fsync_in_core(self, tmp_path):
        _write(tmp_path, "core/machine.py", """
            import asyncio

            async def run():
                await asyncio.sleep(1)
            """)
        assert len(_fence(tmp_path)) == 1


class TestLicensedUses:
    def test_live_package_is_exempt(self, tmp_path):
        _write(tmp_path, "live/site.py", """
            import asyncio
            import socket
            import selectors
            import os

            def flush(fh):
                os.fsync(fh.fileno())
            """)
        assert _fence(tmp_path) == []

    def test_string_mentions_do_not_trip(self, tmp_path):
        _write(tmp_path, "lint/rules.py", """
            PREFIXES = ("socket.", "asyncio.")
            DOC = "call os.fsync here"
            """)
        assert _fence(tmp_path) == []

    def test_os_without_fsync_is_fine(self, tmp_path):
        _write(tmp_path, "obs/export.py", """
            import os

            def here():
                return os.path.join(os.getcwd(), "x")
            """)
        assert _fence(tmp_path) == []


class TestRealTree:
    def test_repro_tree_is_clean_with_no_baseline(self):
        """The fence holds at zero on the real tree: repro.core,
        repro.sim, repro.net, repro.servers, repro.log never touch the
        live-substrate primitives, with nothing grandfathered."""
        report = run_lint(rule_ids=["live-io-fence"])
        leaks = [f for f in report.findings if f.rule == "live-io-fence"]
        assert leaks == []

    def test_sansio_purity_still_clean_too(self):
        """The pre-existing purity proof is unaffected by the new live
        package (live/ is outside core/, so nothing changed scope)."""
        report = run_lint(rule_ids=["flow-sansio-purity"])
        assert [f for f in report.findings
                if f.rule == "flow-sansio-purity"] == []
