"""Unit tests for the cost model and system configuration."""

from repro.config import (
    PROFILES,
    CostModel,
    SystemConfig,
    rt_pc_profile,
    vax_mp_profile,
)


def test_rt_pc_matches_paper_table2():
    c = rt_pc_profile()
    assert c.local_ipc == 1.5
    assert c.log_force == 15.0
    assert c.datagram == 10.0
    assert c.get_lock == 0.5
    assert c.netmsg_rpc == 19.1


def test_rpc_accounting_sums_to_paper_total():
    """19.1 + 2*1.5 + 2*3.2 == 28.5 — the §4.1 'miraculous' sum."""
    c = rt_pc_profile()
    total = c.netmsg_rpc + 2 * c.local_ipc + 2 * c.comman_cpu_per_call
    assert abs(total - 28.5) < 1e-9


def test_vax_profile_is_multiprocessor_and_slower():
    c = vax_mp_profile()
    assert c.num_cpus == 4
    assert c.cpu_speed_factor == 2.0
    assert c.tranman_service_cpu > rt_pc_profile().tranman_service_cpu


def test_vax_log_is_track_write_slow():
    """The throughput testbed disk: ~30 log writes per second."""
    c = vax_mp_profile()
    assert 1000.0 / c.log_force <= 31.0


def test_scaled_cpu():
    c = vax_mp_profile()
    assert c.scaled_cpu(3.0) == 6.0


def test_bcopy_formula():
    c = CostModel()
    # 8.4 us + 180 us/KB, reported in ms.
    assert abs(c.bcopy(2.0) - (8.4 + 360.0) / 1000.0) < 1e-9


def test_with_overrides_copies():
    c = CostModel()
    c2 = c.with_overrides(log_force=99.0)
    assert c2.log_force == 99.0
    assert c.log_force == 15.0


def test_system_config_defaults():
    cfg = SystemConfig()
    assert cfg.group_commit is False  # latency profile default
    assert cfg.sites == {"site0": 1}


def test_system_config_with_cost():
    cfg = SystemConfig().with_cost(datagram=20.0)
    assert cfg.cost.datagram == 20.0


def test_named_profiles():
    assert set(PROFILES) == {"rt_pc", "vax_mp", "wan"}
    assert PROFILES["rt_pc"]().num_cpus == 1


def test_wan_profile_messages_dominate_forces():
    from repro.config import wan_profile

    c = wan_profile()
    assert c.datagram > 3 * c.log_force
    assert c.protocol_timeout > rt_pc_profile().protocol_timeout
