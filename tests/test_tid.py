"""Unit + property tests for nested transaction identifiers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.tid import TID, TidGenerator


def test_top_level_properties():
    tid = TID("T1@a")
    assert tid.is_top_level
    assert tid.depth == 0
    assert tid.parent is None
    assert tid.top_level == tid


def test_child_and_parent():
    tid = TID("T1@a").child(1).child(2)
    assert str(tid) == "T1@a:1.2"
    assert tid.depth == 2
    assert str(tid.parent) == "T1@a:1"
    assert tid.top_level == TID("T1@a")


def test_child_indices_start_at_one():
    with pytest.raises(ValueError):
        TID("T1@a").child(0)


def test_ancestors_nearest_first():
    tid = TID("T1@a", (1, 2, 3))
    assert [str(t) for t in tid.ancestors()] == \
        ["T1@a:1.2", "T1@a:1", "T1@a"]


def test_ancestor_descendant_relations():
    root = TID("T1@a")
    child = root.child(1)
    grandchild = child.child(1)
    sibling = root.child(2)
    assert root.is_ancestor_of(grandchild)
    assert child.is_ancestor_of(grandchild)
    assert grandchild.is_descendant_of(root)
    assert not child.is_ancestor_of(sibling)
    assert not child.is_ancestor_of(child)  # proper ancestry only


def test_cross_family_never_related_hierarchically():
    a = TID("T1@a").child(1)
    b = TID("T2@a").child(1)
    assert not a.is_ancestor_of(b)
    assert not a.is_related_to(b)
    assert a.is_related_to(TID("T1@a"))


def test_lowest_common_ancestor():
    fam = TID("T1@a")
    x = fam.child(1).child(2)
    y = fam.child(1).child(3)
    assert x.lowest_common_ancestor(y) == fam.child(1)
    assert x.lowest_common_ancestor(fam) == fam
    with pytest.raises(ValueError):
        x.lowest_common_ancestor(TID("T2@a"))


def test_parse_roundtrip_examples():
    for text in ("T1@a", "T7@site0:2.1", "T3@b:1.1.1"):
        assert str(TID.parse(text)) == text


def test_parse_rejects_malformed():
    with pytest.raises(ValueError):
        TID.parse("T1@a:x.y")
    with pytest.raises(ValueError):
        TID.parse("T1@a:0")


def test_tids_are_hashable_and_ordered():
    a, b = TID("T1@a"), TID("T1@a", (1,))
    assert len({a, b, TID("T1@a")}) == 2
    assert a < b


@given(st.lists(st.integers(min_value=1, max_value=9), max_size=5))
def test_parse_str_roundtrip_property(path):
    tid = TID("T5@site1", tuple(path))
    assert TID.parse(str(tid)) == tid


@given(st.lists(st.integers(min_value=1, max_value=4), min_size=1,
                max_size=4),
       st.lists(st.integers(min_value=1, max_value=4), max_size=4))
def test_ancestry_is_prefix_property(prefix, suffix):
    ancestor = TID("T1@a", tuple(prefix))
    descendant = TID("T1@a", tuple(prefix + suffix))
    assert ancestor.is_ancestor_of(descendant) == (len(suffix) > 0)


# ----------------------------------------------------------- generator


def test_generator_mints_unique_families_per_site():
    gen_a = TidGenerator("a")
    gen_b = TidGenerator("b")
    t1, t2 = gen_a.new_top_level(), gen_a.new_top_level()
    assert t1 != t2
    assert gen_b.new_top_level() != t1


def test_generator_children_sequential_per_parent():
    gen = TidGenerator("a")
    root = gen.new_top_level()
    c1 = gen.new_child(root)
    c2 = gen.new_child(root)
    grand = gen.new_child(c1)
    assert (str(c1), str(c2)) == (f"{root}:1", f"{root}:2")
    assert str(grand) == f"{root}:1.1"


def test_generator_forget_family_resets_child_counter():
    gen = TidGenerator("a")
    root = gen.new_top_level()
    gen.new_child(root)
    gen.forget_family(root.family)
    assert str(gen.new_child(root)) == f"{root}:1"
