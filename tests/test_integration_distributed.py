"""Integration: distributed two-phase commit through the whole stack."""

import pytest

from repro import CamelotSystem, Outcome, SystemConfig, TwoPhaseVariant


@pytest.fixture
def system():
    return CamelotSystem(SystemConfig(sites={"a": 1, "b": 1, "c": 1}))


def distributed_txn(system, app, services, op="write",
                    variant=TwoPhaseVariant.OPTIMIZED):
    def workload():
        tid = yield from app.begin()
        for i, service in enumerate(services):
            if op == "write":
                yield from app.write(tid, service, "x", i)
            else:
                yield from app.read(tid, service, "x")
        outcome = yield from app.commit(tid, variant=variant)
        return (tid, outcome)

    return system.run_process(workload(), timeout_ms=120_000.0)


def test_two_site_commit_applies_everywhere(system):
    app = system.application("a")
    tid, outcome = distributed_txn(system, app,
                                   ["server0@a", "server0@b"])
    assert outcome is Outcome.COMMITTED
    assert system.server("server0@a").peek("x") == 0
    assert system.server("server0@b").peek("x") == 1


def test_comman_spying_discovers_subordinates(system):
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@b", "x", 1)
        yield from app.write(tid, "server0@c", "x", 1)
        return tid

    tid = system.run_process(workload())
    known = system.tranman("a").known_sites(tid)
    assert known == {"b", "c"}


def test_optimized_2pc_log_forces_and_datagrams(system):
    """The headline §3.2 counts: 2 forces and 3 protocol datagrams for a
    1-subordinate optimized update commit."""
    app = system.application("a")
    before = system.tracer.snapshot()
    distributed_txn(system, app, ["server0@a", "server0@b"])
    delta = system.tracer.delta(before, system.tracer.snapshot())
    assert delta.get("diskman.force", 0) == 2
    assert delta.get("tranman.datagram", 0) == 3  # prepare, vote, commit


def test_unoptimized_adds_subordinate_force_and_ack_datagram(system):
    app = system.application("a")
    before = system.tracer.snapshot()
    distributed_txn(system, app, ["server0@a", "server0@b"],
                    variant=TwoPhaseVariant.UNOPTIMIZED)
    system.run_for(1_000.0)  # let the ack land
    delta = system.tracer.delta(before, system.tracer.snapshot())
    assert delta.get("diskman.force", 0) == 3  # + sub commit force
    assert delta.get("tranman.datagram", 0) == 4  # + immediate ack


def test_optimized_ack_is_piggybacked_eventually(system):
    """The delayed ack still arrives (via the piggyback sweep) and the
    coordinator then writes its end record and forgets."""
    app = system.application("a")
    tid, __ = distributed_txn(system, app, ["server0@a", "server0@b"])
    system.run_for(3_000.0)
    tm_a = system.tranman("a")
    assert tid not in tm_a.machines
    assert system.tracer.count("tranman.piggyback") >= 1
    end_records = [r for r in system.stores.for_site("a").records()
                   if r.kind.value == "end"]
    assert len(end_records) == 1


def test_subordinate_drops_locks_before_commit_record_durable(system):
    """The §3.2 reordering, observed end to end: at the subordinate the
    locks drop at commit-notice time while the commit record is still
    volatile."""
    app = system.application("a")
    tid, __ = distributed_txn(system, app, ["server0@a", "server0@b"])
    # Give the commit notice time to reach b, but stop well before the
    # lazy-flush sweep (~35 ms) makes the commit record durable.
    system.run_for(18.0)
    server_b = system.server("server0@b")
    assert server_b.locks.locked_objects() == []
    wal_b = system.runtime("b").diskman.wal
    buffered = [r.kind.value for r in wal_b.buffered_records()]
    assert "commit" in buffered  # lazy, not yet durable


def test_read_only_transaction_no_forces_two_datagrams(system):
    app = system.application("a")
    before = system.tracer.snapshot()
    __, outcome = distributed_txn(system, app,
                                  ["server0@a", "server0@b"], op="read")
    assert outcome is Outcome.COMMITTED
    delta = system.tracer.delta(before, system.tracer.snapshot())
    assert delta.get("diskman.force", 0) == 0
    assert delta.get("tranman.datagram", 0) == 2  # prepare, read vote


def test_mixed_read_write_sites(system):
    """Read-only subordinate is omitted from phase two."""
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "x", 7)   # update: local
        yield from app.read(tid, "server0@b", "x")       # read-only sub
        yield from app.write(tid, "server0@c", "x", 9)   # update sub
        outcome = yield from app.commit(tid)
        return outcome

    before = system.tracer.snapshot()
    assert system.run_process(workload()) is Outcome.COMMITTED
    delta = system.tracer.delta(before, system.tracer.snapshot())
    # prepares to b and c + votes + commit notice only to c.
    assert delta.get("tranman.datagram", 0) == 5
    assert system.server("server0@c").peek("x") == 9


def test_subordinate_no_vote_aborts_everywhere(system):
    app = system.application("a")

    def workload():
        tid = yield from app.begin()
        yield from app.write(tid, "server0@a", "x", 1)
        yield from app.write(tid, "server0@b", "x", 2)
        system.server("server0@b").refuse_next_prepare.add(tid.top_level)
        outcome = yield from app.commit(tid)
        return outcome

    assert system.run_process(workload()) is Outcome.ABORTED
    system.run_for(2_000.0)
    assert system.server("server0@a").peek("x") is None
    assert system.server("server0@b").peek("x") is None


def test_three_subordinates_commit(system):
    big = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1, "c": 1, "d": 1}))
    app = big.application("a")
    services = big.default_services()
    tid, outcome = distributed_txn(big, app, services)
    assert outcome is Outcome.COMMITTED
    for service in services:
        assert big.server(service).peek("x") is not None


def test_multicast_mode_still_correct(three_sites_multicast=None):
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1, "c": 1},
                                        use_multicast=True))
    app = system.application("a")
    tid, outcome = distributed_txn(system, app, system.default_services())
    assert outcome is Outcome.COMMITTED
    assert system.tracer.count("tranman.multicast") >= 2  # prepare+commit


def test_atomicity_all_sites_agree(system):
    """After any committed distributed transaction every participant's
    tombstone agrees."""
    app = system.application("a")
    tid, outcome = distributed_txn(system, app, system.default_services())
    system.run_for(3_000.0)
    outcomes = set()
    for name in system.site_names():
        tomb = system.tranman(name).tombstones.get(str(tid))
        if tomb is not None:
            outcomes.add(tomb)
    assert outcomes == {Outcome.COMMITTED}
