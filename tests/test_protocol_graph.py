"""flow-protocol-graph: the statically extracted transition graphs and
the happy-path walk over them must agree with the paper's closed-form
cost formulas, and the state-machine checks must catch dead enum
members on synthetic trees."""

import json
import textwrap
from pathlib import Path

from repro.analysis.static_analysis import path_counts, protocol_graph_counts
from repro.lint import run_lint
from repro.lint.engine import build_context
from repro.lint.flow.protograph import emit_graphs


def _write(root: Path, rel: str, source: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))


# ------------------------------------------------- counts cross-check


class TestCountCrossCheck:
    """The ISSUE-mandated gate: counts read off the *extracted graph*
    (no simulator involved) equal the analysis formulas — optimized
    presumed-abort 2PC forces twice and sends three datagrams; the
    non-blocking protocol forces four times and sends five."""

    def test_two_phase_matches_formula(self):
        walked = protocol_graph_counts("two_phase")
        assert walked == path_counts("two_phase", "write", n_subs=1)
        assert walked == {"log_forces": 2, "datagrams": 3}

    def test_non_blocking_matches_formula(self):
        walked = protocol_graph_counts("non_blocking")
        assert walked == path_counts("non_blocking", "write", n_subs=1)
        assert walked == {"log_forces": 4, "datagrams": 5}

    def test_paxos_commit_matches_formula_and_degenerates_to_2pc(self):
        """The F=0 acceptance gate: the PcLeader/PcParticipant graph
        walk must price exactly like optimized 2PC — the degeneration is
        verified from extracted source structure, not just measured."""
        walked = protocol_graph_counts("paxos_commit")
        assert walked == path_counts("paxos_commit", "write", n_subs=1)
        assert walked == protocol_graph_counts("two_phase")
        assert walked == {"log_forces": 2, "datagrams": 3}

    def test_unknown_protocol_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            protocol_graph_counts("three_phase")


# ------------------------------------------------- state-machine checks


class TestStateChecks:
    def test_unreachable_member_flagged(self, tmp_path):
        _write(tmp_path, "core/toy.py", """
            from enum import Enum


            class ToyState(Enum):
                IDLE = "idle"
                RUNNING = "running"
                ZOMBIE = "zombie"


            class Toy:
                def __init__(self, tid):
                    self.tid = tid
                    self.state = ToyState.IDLE

                def on_message(self, msg):
                    if self.state is ToyState.IDLE:
                        self.state = ToyState.RUNNING
                        return []
                    if self.state is ToyState.RUNNING:
                        return []
                    return []
            """)
        report = run_lint(root=tmp_path, rule_ids=["flow-protocol-graph"])
        keys = {f.key for f in report.findings}
        assert "unreachable:ToyState.ZOMBIE" in keys
        assert not any(k.startswith("unreachable:") and "ZOMBIE" not in k
                       for k in keys)

    def test_dead_end_member_flagged(self, tmp_path):
        _write(tmp_path, "core/toy.py", """
            from enum import Enum


            class ToyState(Enum):
                IDLE = "idle"
                STUCK = "stuck"


            class Toy:
                def __init__(self, tid):
                    self.tid = tid
                    self.state = ToyState.IDLE

                def on_message(self, msg):
                    if self.state is ToyState.IDLE:
                        self.state = ToyState.STUCK
                        return []
                    return []
            """)
        report = run_lint(root=tmp_path, rule_ids=["flow-protocol-graph"])
        keys = {f.key for f in report.findings}
        assert "deadend:ToyState.STUCK" in keys

    def test_terminal_done_state_allowed(self, tmp_path):
        _write(tmp_path, "core/toy.py", """
            from enum import Enum


            class ToyState(Enum):
                IDLE = "idle"
                DONE = "done"


            class Toy:
                def __init__(self, tid):
                    self.tid = tid
                    self.state = ToyState.IDLE

                def on_message(self, msg):
                    if self.state is ToyState.IDLE:
                        self.state = ToyState.DONE
                        return []
                    return []
            """)
        report = run_lint(root=tmp_path, rule_ids=["flow-protocol-graph"])
        assert not report.findings

    def test_live_tree_clean(self):
        report = run_lint(rule_ids=["flow-protocol-graph"])
        assert not report.findings, [f.message for f in report.findings]


# ------------------------------------------------------- graph emission


class TestEmitGraphs:
    def test_specs_and_dot_for_all_machines(self, tmp_path):
        import repro
        root = Path(repro.__file__).resolve().parent
        written = emit_graphs(build_context(root), tmp_path)
        names = {p.name for p in written}
        assert "TwoPhaseCoordinator.json" in names
        assert "TwoPhaseSubordinate.dot" in names
        assert "NbCoordinator.json" in names

        spec = json.loads((tmp_path / "TwoPhaseSubordinate.json").read_text())
        assert spec["machine"] == "TwoPhaseSubordinate"
        assert spec["initial"] == "PREPARING"
        assert spec["transitions"], "extracted graph must not be empty"
        # The prepared-vote edge: the YES vote is only sent from the
        # forced-prepare continuation.
        assert any(t["src"] == "FORCING_PREPARE" and t["dst"] == "PREPARED"
                   and t["input"].startswith("forced:")
                   for t in spec["transitions"])

        dot = (tmp_path / "TwoPhaseSubordinate.dot").read_text()
        assert dot.startswith("digraph")
        assert '"FORCING_PREPARE" -> "PREPARED"' in dot
