"""Every example must run clean from the command line.

Each example asserts its own expected outcomes internally, so a zero
exit status means the demonstrated behaviour actually happened.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, (
        f"{example.name} failed:\n{result.stdout}\n{result.stderr}")
    assert result.stdout.strip(), f"{example.name} printed nothing"


def test_examples_exist():
    """The deliverable: at least a quickstart plus three scenarios."""
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 4
