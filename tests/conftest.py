"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import CostModel, SystemConfig, rt_pc_profile
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.sim.rng import RngStreams
from repro.sim.tracing import Tracer
from repro.system import CamelotSystem


@pytest.fixture
def kernel() -> Kernel:
    return Kernel()


@pytest.fixture
def tracer() -> Tracer:
    return Tracer()


@pytest.fixture
def cost() -> CostModel:
    return rt_pc_profile()


@pytest.fixture
def rng() -> RngStreams:
    return RngStreams(0)


def run_proc(kernel: Kernel, body, timeout_ms: float = 120_000.0):
    """Run a generator to completion on a kernel; return its value."""
    proc = Process(kernel, body, name="test-proc")
    deadline = kernel.now + timeout_ms
    while proc.alive and kernel.now < deadline:
        if not kernel.step():
            break
    assert not proc.alive, "test process did not finish"
    return proc.done.value


@pytest.fixture
def two_sites() -> CamelotSystem:
    return CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))


@pytest.fixture
def three_sites() -> CamelotSystem:
    return CamelotSystem(SystemConfig(sites={"a": 1, "b": 1, "c": 1}))
