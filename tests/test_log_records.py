"""Unit tests for log record types and serialisation."""


from repro.log.records import (
    LogRecord,
    RecordKind,
    abort_pledge_record,
    abort_record,
    commit_record,
    coordinator_commit_record,
    end_record,
    prepare_record,
    replication_record,
    update_record,
)


def test_update_record_carries_old_and_new():
    rec = update_record("T1@a", "a", "server0@a", "x", 1, 2)
    assert rec.kind is RecordKind.UPDATE
    assert rec.payload == {"server": "server0@a", "object": "x",
                           "old": 1, "new": 2}


def test_prepare_record_2pc_vs_nb():
    plain = prepare_record("T1@a", "b", coordinator="a")
    assert "sites" not in plain.payload
    nb = prepare_record("T1@a", "b", coordinator="a", sites=["a", "b"],
                        quorum_sizes={"n_sites": 2, "commit_quorum": 2,
                                      "abort_quorum": 1})
    assert nb.payload["sites"] == ["a", "b"]
    assert nb.payload["quorum_sizes"]["commit_quorum"] == 2


def test_coordinator_commit_lists_subordinates():
    rec = coordinator_commit_record("T1@a", "a", subordinates=["b", "c"])
    assert rec.payload["subordinates"] == ["b", "c"]


def test_replication_record_payload():
    rec = replication_record("T1@a", "b", {"votes": {"a": "yes"}})
    assert rec.payload["decision_data"]["votes"] == {"a": "yes"}


def test_all_kinds_roundtrip_through_dict():
    records = [
        update_record("T1@a", "a", "s", "x", None, 5),
        prepare_record("T1@a", "a", "a", sites=["a"],
                       quorum_sizes={"n_sites": 1, "commit_quorum": 1,
                                     "abort_quorum": 1}),
        commit_record("T1@a", "a"),
        coordinator_commit_record("T1@a", "a", ["b"]),
        abort_record("T1@a", "a"),
        replication_record("T1@a", "a", {"k": "v"}),
        abort_pledge_record("T1@a", "a"),
        end_record("T1@a", "a"),
    ]
    for rec in records:
        rec.lsn = 7
        clone = LogRecord.from_dict(rec.to_dict())
        assert clone.kind is rec.kind
        assert clone.tid == rec.tid
        assert clone.site == rec.site
        assert clone.payload == rec.payload
        assert clone.lsn == 7


def test_serialised_form_is_detached():
    rec = update_record("T1@a", "a", "s", "x", 0, 1)
    rec.lsn = 1
    data = rec.to_dict()
    rec.payload["new"] = 999
    assert data["payload"]["new"] == 1


def test_record_kinds_are_distinct_strings():
    values = [k.value for k in RecordKind]
    assert len(values) == len(set(values))


def test_abort_pledge_has_own_kind():
    assert abort_pledge_record("T1@a", "b").kind is RecordKind.ABORT_PLEDGE
