"""Dueling Paxos Commit candidates: ballot safety under contention.

The non-blocking family settles takeover races with quorum exclusivity
(change 4); Paxos Commit settles them with ballots.  Two timed-out
participants run elections concurrently; per-site-unique ballots, the
promise rule, and the chosen-before-acted-on rule are all that stand
between them and a split decision.  These tests drive the race by hand:
nack-and-backoff, value selection by highest ballot, the abort filler
for unproposed instances, and the quorum-intersection guarantee that a
ballot-0 commit is always seen by a later candidate.
"""

import pytest

from repro.core.messages import (
    PcOutcome,
    PcOutcomeAck,
    PcP1a,
    PcP1b,
    PcP2a,
    PcPhase2b,
)
from repro.core.outcomes import Outcome, Vote
from repro.core.paxoscommit import (
    ABORT_FILLER,
    PC_ACCEPT_FORCE,
    PC_DECIDE_FORCE,
    PC_ELECTION_TIMER,
    PC_PREPARE_FORCE,
    PcCandidate,
    PcCandidateState,
    PcParticipant,
    PcProtocolViolation,
    ballot_for,
)
from repro.core.quorum import QuorumSpec
from repro.core.tid import TID

from tests.machine_harness import MachineHost

TID1 = TID("T1@a")
SITES3 = ["a", "b", "c"]
Q3 = QuorumSpec.paxos(3)            # F=1: quorum 2 of 3

YES = Vote.YES.value
FULL_BALLOT0 = tuple((s, 0, YES) for s in SITES3)


def candidate(site):
    return MachineHost(PcCandidate(TID1, site, SITES3, SITES3, Q3)).start()


def p1b(sender, ballot, accepted=(), promised=None):
    return PcP1b(TID1, sender, ballot=ballot,
                 promised=ballot if promised is None else promised,
                 accepted=tuple(accepted))


# ----------------------------------------------------------- ballot space


def test_ballots_are_globally_unique_and_per_site_monotone():
    seen = set()
    for attempt in range(4):
        for site in SITES3:
            b = ballot_for(attempt, SITES3, site)
            assert b > 0                     # ballot 0 is the prepare round
            assert b not in seen
            seen.add(b)
    assert ballot_for(1, SITES3, "b") > ballot_for(0, SITES3, "b")


def test_candidate_polls_every_acceptor_at_its_own_ballot():
    host = candidate("b")
    polls = [(d, m) for d, m in host.sent if isinstance(m, PcP1a)]
    assert sorted(d for d, _ in polls) == SITES3
    assert {m.ballot for _, m in polls} == {ballot_for(0, SITES3, "b")}
    assert PC_ELECTION_TIMER in host.timers


# ------------------------------------------- value selection and decision


def test_quorum_intersection_recovers_ballot0_commit():
    """Any phase-1 quorum intersects the ballot-0 acceptance quorum, so
    a candidate always sees the committed vector and must re-propose it."""
    host = candidate("c")
    ballot = host.machine.ballot
    host.deliver(p1b("c", ballot, accepted=FULL_BALLOT0))
    assert host.machine.state is PcCandidateState.POLLING  # 1 < quorum
    host.deliver(p1b("a", ballot, accepted=FULL_BALLOT0))
    p2as = [m for _, m in host.sent if isinstance(m, PcP2a)]
    assert len(p2as) == 3
    assert dict(p2as[0].values) == {s: YES for s in SITES3}

    host.deliver(PcPhase2b(TID1, "a", ballot=ballot))
    assert host.machine.outcome is None       # chosen needs the quorum
    host.deliver(PcPhase2b(TID1, "c", ballot=ballot))
    # Commit decisions are forced before any outcome leaves the site.
    assert host.pending_forces == [PC_DECIDE_FORCE]
    assert host.forced_kinds() == ["coord_commit"]
    host.complete_force(PC_DECIDE_FORCE)
    outcomes = [d for d, m in host.sent if isinstance(m, PcOutcome)]
    # Own site included: the co-resident participant applies via loopback.
    assert sorted(outcomes) == SITES3


def test_unproposed_instance_gets_abort_filler_and_aborts():
    """The leader crashed before a's acceptance spread: no promise
    carries instance a, the candidate fills it with the abort value, and
    the transaction aborts without a force (presumed abort)."""
    host = candidate("b")
    ballot = host.machine.ballot
    partial = tuple((s, 0, YES) for s in ("b", "c"))
    host.deliver(p1b("b", ballot, accepted=partial))
    host.deliver(p1b("c", ballot, accepted=partial))
    values = dict(host.machine.values)
    assert values["a"] == ABORT_FILLER
    host.deliver(PcPhase2b(TID1, "b", ballot=ballot))
    host.deliver(PcPhase2b(TID1, "c", ballot=ballot))
    assert host.forced == []
    assert host.written_kinds() == ["abort"]
    outcomes = [m for _, m in host.sent if isinstance(m, PcOutcome)]
    assert {m.outcome for m in outcomes} == {Outcome.ABORTED}


def test_highest_ballot_acceptance_wins_value_selection():
    """A rival's higher-ballot abort filler supersedes the stale
    ballot-0 YES for the same instance."""
    host = candidate("c")
    ballot = host.machine.ballot
    host.deliver(p1b("a", ballot, accepted=FULL_BALLOT0))
    host.deliver(p1b("b", ballot, accepted=(
        ("a", 0, YES), ("b", 2, ABORT_FILLER), ("c", 0, YES))))
    assert dict(host.machine.values)["b"] == ABORT_FILLER


def test_unchosen_vector_is_never_acted_on():
    """One 2b short of a quorum, the candidate must not decide — acting
    on an unchosen abort vector could diverge from a later candidate
    that intersects a ballot-0 commit."""
    host = candidate("b")
    ballot = host.machine.ballot
    host.deliver(p1b("a", ballot))
    host.deliver(p1b("b", ballot))
    host.deliver(PcPhase2b(TID1, "a", ballot=ballot))
    assert host.machine.outcome is None
    assert host.written == [] and host.forced == []


# ------------------------------------------------------- the duel proper


def test_nacked_candidate_backs_off_past_the_rival():
    host = candidate("b")                     # ballot 2 in a 3-site ring
    rival_ballot = ballot_for(0, SITES3, "c")  # 3
    host.deliver(p1b("a", host.machine.ballot, promised=rival_ballot))
    assert host.machine.state is PcCandidateState.BACKOFF
    assert PC_ELECTION_TIMER in host.timers
    host.fire_timer(PC_ELECTION_TIMER)
    # Re-polls at a ballot strictly above the rival's.
    assert host.machine.ballot > rival_ballot
    polls = [m for _, m in host.sent if isinstance(m, PcP1a)]
    assert polls[-1].ballot == host.machine.ballot


def test_nack_during_phase2_also_backs_off():
    host = candidate("b")
    ballot = host.machine.ballot
    host.deliver(p1b("a", ballot, accepted=FULL_BALLOT0))
    host.deliver(p1b("b", ballot, accepted=FULL_BALLOT0))
    assert host.machine.state is PcCandidateState.PROPOSING
    host.deliver(p1b("c", ballot, promised=ballot + 7))
    assert host.machine.state is PcCandidateState.BACKOFF


def test_poll_timeout_retries_at_a_higher_ballot():
    host = candidate("c")
    first = host.machine.ballot
    host.fire_timer(PC_ELECTION_TIMER)
    assert host.machine.ballot > first
    # Deterministic exponential backoff: the timer delay doubled.
    assert host.timers[PC_ELECTION_TIMER] == \
        host.machine.poll_timeout_ms * 2


def test_losing_candidate_adopts_rival_outcome_and_stands_down():
    host = candidate("b")
    host.deliver(PcOutcome(TID1, "c", outcome=Outcome.COMMITTED))
    assert host.machine.outcome is Outcome.COMMITTED
    assert host.machine.decided_by_peer
    assert host.machine.state is PcCandidateState.DONE
    assert host.forgotten == [TID1]
    # The co-resident participant acks; the candidate sends nothing.
    assert not any(isinstance(m, PcOutcomeAck) for _, m in host.sent)


def test_conflicting_decisions_raise_protocol_violation():
    host = candidate("c")
    ballot = host.machine.ballot
    host.deliver(p1b("a", ballot, accepted=FULL_BALLOT0))
    host.deliver(p1b("c", ballot, accepted=FULL_BALLOT0))
    host.deliver(PcPhase2b(TID1, "a", ballot=ballot))
    host.deliver(PcPhase2b(TID1, "c", ballot=ballot))
    assert host.machine.outcome is Outcome.COMMITTED
    with pytest.raises(PcProtocolViolation, match="rival decided"):
        host.deliver(PcOutcome(TID1, "b", outcome=Outcome.ABORTED))


def test_stale_ballot_messages_are_ignored():
    host = candidate("b")
    ballot = host.machine.ballot
    host.deliver(p1b("a", ballot - 1, accepted=FULL_BALLOT0))
    host.deliver(PcPhase2b(TID1, "a", ballot=ballot - 1))
    assert host.machine.promises == {} and host.machine.outcome is None


def test_notify_retries_until_all_sites_ack():
    host = candidate("c")
    ballot = host.machine.ballot
    host.deliver(p1b("a", ballot, accepted=FULL_BALLOT0))
    host.deliver(p1b("c", ballot, accepted=FULL_BALLOT0))
    host.deliver(PcPhase2b(TID1, "a", ballot=ballot))
    host.deliver(PcPhase2b(TID1, "c", ballot=ballot))
    host.complete_force(PC_DECIDE_FORCE)
    host.deliver(PcOutcomeAck(TID1, "a"))
    host.fire_timer("pc.notify")
    resent = [d for d, m in host.sent if isinstance(m, PcOutcome)]
    # a is acked; only b and c (self) are renotified.
    assert resent.count("a") == 1 and resent.count("b") == 2
    host.deliver(PcOutcomeAck(TID1, "b"))
    host.deliver(PcOutcomeAck(TID1, "c"))
    assert host.forgotten == [TID1]


# ----------------------------- full election against real acceptor machines


def _recovered_acceptor(site, accepted):
    sub = PcParticipant.recovered(TID1, site, "a", SITES3, SITES3,
                                  accepted=accepted)
    return MachineHost(sub)


def _route_election(cand, acceptors):
    """Deliver candidate sends to acceptor hosts and replies back until
    the wires drain.  Forces complete eagerly (in-order durability)."""
    cursor = {"cand": 0}
    cursors = {site: 0 for site in acceptors}
    progressed = True
    while progressed:
        progressed = False
        for dst, msg in cand.sent[cursor["cand"]:]:
            cursor["cand"] += 1
            progressed = True
            if dst in acceptors:
                acceptors[dst].deliver(msg)
                while acceptors[dst].pending_forces:
                    acceptors[dst].complete_force()
        for site, host in acceptors.items():
            for dst, msg in host.sent[cursors[site]:]:
                cursors[site] += 1
                progressed = True
                if dst == cand.machine.site:
                    cand.deliver(msg)
                    while cand.pending_forces:
                        cand.complete_force()


def test_election_against_live_acceptors_commits_replicated_vector():
    """Leader a crashed after its vote reached a quorum: b and c hold
    durable ballot-0 acceptances for every instance, so candidate c's
    election must finish the commit, and both survivors apply it."""
    acceptors = {
        "b": _recovered_acceptor("b", [["a", 0, YES], ["b", 0, YES],
                                       ["c", 0, YES]]),
        "c": _recovered_acceptor("c", [["a", 0, YES], ["b", 0, YES],
                                       ["c", 0, YES]]),
    }
    cand = candidate("c")
    _route_election(cand, acceptors)
    assert cand.machine.outcome is Outcome.COMMITTED
    assert acceptors["b"].local_commits == [TID1]
    # c's own participant commits via the loopback PcOutcome too.
    assert acceptors["c"].local_commits == [TID1]


def test_election_against_live_acceptors_aborts_unreplicated_vector():
    """Leader a crashed before anything spread: each survivor holds only
    its own acceptance, instance a gets the abort filler, and the
    election aborts cleanly everywhere."""
    acceptors = {
        "b": _recovered_acceptor("b", [["b", 0, YES]]),
        "c": _recovered_acceptor("c", [["c", 0, YES]]),
    }
    cand = candidate("b")
    _route_election(cand, acceptors)
    assert cand.machine.outcome is Outcome.ABORTED
    assert acceptors["b"].local_aborts == [TID1]
    assert acceptors["c"].local_aborts == [TID1]
