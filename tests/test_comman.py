"""Unit/integration tests for the communication manager."""

import pytest

from repro import CamelotSystem, SystemConfig
from repro.mach.message import Message


@pytest.fixture
def system():
    return CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))


def test_remote_rpc_latency_is_paper_28_5_plus_service(system):
    """The full interposed path: 28.5 ms of transport/ComMan plus the
    server's lock acquisition."""
    comman = system.runtime("a").comman

    def probe():
        samples = []
        for _ in range(20):
            t0 = system.kernel.now
            msg = Message(kind="peek", body={"object": "x"})
            yield from comman.call_service("server0@b", msg)
            samples.append(system.kernel.now - t0)
        return sum(samples) / len(samples)

    mean = system.run_process(probe())
    # peek skips locking; 28.5 + server CPU + network jitter mean.
    assert 28.0 <= mean <= 33.0


def test_local_call_bypasses_comman(system):
    comman = system.runtime("a").comman

    def probe():
        t0 = system.kernel.now
        msg = Message(kind="peek", body={"object": "x"})
        yield from comman.call_service("server0@a", msg)
        return system.kernel.now - t0

    elapsed = system.run_process(probe())
    assert elapsed <= 5.0
    assert comman.calls == 0  # remote-call counter untouched


def test_request_spying_records_destination_site(system):
    comman = system.runtime("a").comman

    def probe():
        tm = system.tranman("a")
        tid = tm.tid_gen.new_top_level()
        tm.families.begin(tid)
        msg = Message(kind="operation",
                      body={"tid": str(tid), "op": "read", "object": "x"},
                      trans={"tid": str(tid)})
        yield from comman.call_service("server0@b", msg)
        return tid

    tid = system.run_process(probe())
    assert "b" in system.tranman("a").known_sites(tid)


def test_response_spying_merges_transitive_sites(system):
    """a -> b, where b's site list for the tid already includes c: the
    response back to a carries {b, c}."""
    big = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1, "c": 1}))
    app = big.application("a")

    def workload():
        tid = yield from app.begin()
        # Seed b's TranMan with knowledge of c, as if a server at b had
        # called onward to c.
        big.tranman("b").note_remote_site(tid, "c")
        yield from app.write(tid, "server0@b", "x", 1)
        return tid

    tid = big.run_process(workload())
    assert big.tranman("a").known_sites(tid) >= {"b", "c"}


def test_timeout_returns_none(system):
    system.crash_site("b")
    comman = system.runtime("a").comman

    def probe():
        msg = Message(kind="peek", body={"object": "x"})
        reply = yield from comman.call_service("server0@b", msg,
                                               timeout=200.0)
        return reply

    assert system.run_process(probe()) is None


def test_unknown_service_raises(system):
    comman = system.runtime("a").comman

    def probe():
        with pytest.raises(KeyError):
            yield from comman.call_service("nowhere", Message(kind="x"))
        return True

    assert system.run_process(probe())
