"""Integration: the non-blocking protocol through the whole stack."""

import pytest

from repro import CamelotSystem, Outcome, ProtocolKind, SystemConfig
from repro.log.records import RecordKind


@pytest.fixture
def system():
    return CamelotSystem(SystemConfig(sites={"a": 1, "b": 1, "c": 1}))


def nb_txn(system, app, services, op="write"):
    def workload():
        tid = yield from app.begin(protocol=ProtocolKind.NON_BLOCKING)
        for i, service in enumerate(services):
            if op == "write":
                yield from app.write(tid, service, "x", i)
            else:
                yield from app.read(tid, service, "x")
        outcome = yield from app.commit(tid,
                                        protocol=ProtocolKind.NON_BLOCKING)
        return (tid, outcome)

    return system.run_process(workload(), timeout_ms=120_000.0)


def test_commit_applies_everywhere(system):
    app = system.application("a")
    tid, outcome = nb_txn(system, app, system.default_services())
    assert outcome is Outcome.COMMITTED
    for i, service in enumerate(system.default_services()):
        assert system.server(service).peek("x") == i


def test_one_subordinate_four_forces_on_path(system):
    """The §4.3 counts: 4 forces and 5 datagrams on the critical path of
    a 1-subordinate non-blocking update."""
    small = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1}))
    app = small.application("a")
    before = small.tracer.snapshot()
    __, outcome = nb_txn(small, app, small.default_services())
    small.run_for(100.0)  # outcome notice + ack settle
    delta = small.tracer.delta(before, small.tracer.snapshot())
    assert outcome is Outcome.COMMITTED
    assert delta.get("diskman.force", 0) == 4
    # prepare, vote, replicate, replicate-ack, outcome (+ outcome ack).
    assert delta.get("tranman.datagram", 0) in (5, 6)


def test_each_update_site_writes_prepare_and_replication(system):
    app = system.application("a")
    tid, __ = nb_txn(system, app, system.default_services())
    system.run_for(3_000.0)
    for name in system.site_names():
        kinds = [r.kind for r in system.stores.for_site(name).records()
                 if r.tid == str(tid)]
        assert RecordKind.PREPARE in kinds
        assert RecordKind.REPLICATION in kinds or name not in \
            ("a", "b")  # quorum = 2 of 3: c may or may not be needed
        assert RecordKind.COMMIT in kinds


def test_replication_record_carries_decision_data(system):
    app = system.application("a")
    tid, __ = nb_txn(system, app, system.default_services())
    system.run_for(3_000.0)
    recs = [r for r in system.stores.for_site("a").records()
            if r.kind is RecordKind.REPLICATION and r.tid == str(tid)]
    assert recs
    data = recs[0].payload["decision_data"]
    assert data["coordinator"] == "a"
    assert set(data["votes"]) == {"a", "b", "c"}
    assert data["quorum"]["commit_quorum"] == 2


def test_read_only_nb_matches_2pc_read_counts(system):
    app = system.application("a")
    before = system.tracer.snapshot()
    __, outcome = nb_txn(system, app, system.default_services(), op="read")
    delta = system.tracer.delta(before, system.tracer.snapshot())
    assert outcome is Outcome.COMMITTED
    assert delta.get("diskman.force", 0) == 0
    assert delta.get("tranman.datagram", 0) == 4  # 2 prepares + 2 votes


def test_read_only_helper_drafted_when_quorum_needs_it(system):
    """Update at coordinator only, both subs read-only: Qc=2 needs a
    helper replication record at a read-only site."""
    app = system.application("a")

    def workload():
        tid = yield from app.begin(protocol=ProtocolKind.NON_BLOCKING)
        yield from app.write(tid, "server0@a", "x", 1)
        yield from app.read(tid, "server0@b", "x")
        yield from app.read(tid, "server0@c", "x")
        outcome = yield from app.commit(tid,
                                        protocol=ProtocolKind.NON_BLOCKING)
        return (tid, outcome)

    tid, outcome = system.run_process(workload())
    assert outcome is Outcome.COMMITTED
    system.run_for(3_000.0)
    replication_sites = [
        name for name in system.site_names()
        if any(r.kind is RecordKind.REPLICATION and r.tid == str(tid)
               for r in system.stores.for_site(name).records())]
    assert len(replication_sites) == 2  # coordinator + one helper
    assert "a" in replication_sites


def test_no_vote_aborts(system):
    app = system.application("a")

    def workload():
        tid = yield from app.begin(protocol=ProtocolKind.NON_BLOCKING)
        yield from app.write(tid, "server0@a", "x", 1)
        yield from app.write(tid, "server0@b", "x", 2)
        system.server("server0@b").refuse_next_prepare.add(tid)
        outcome = yield from app.commit(tid,
                                        protocol=ProtocolKind.NON_BLOCKING)
        return outcome

    assert system.run_process(workload()) is Outcome.ABORTED
    system.run_for(2_000.0)
    assert system.server("server0@a").peek("x") is None


def test_all_sites_agree_and_forget(system):
    app = system.application("a")
    tid, __ = nb_txn(system, app, system.default_services())
    system.run_for(10_000.0)
    for name in system.site_names():
        tm = system.tranman(name)
        assert tm.tombstones.get(str(tid)) is Outcome.COMMITTED
        assert str(tid) not in {str(t) for t in tm.machines}


def test_nb_slower_than_2pc_but_under_twice(system):
    from repro.bench.experiment import measure_latency

    two = measure_latency(1, trials=8)
    nb = measure_latency(1, protocol=ProtocolKind.NON_BLOCKING, trials=8)
    ratio = nb.summary.mean / two.summary.mean
    assert 1.2 < ratio < 2.0
