"""Unit tests for the data server (driven via its message interface)."""

import pytest

from repro import CamelotSystem, SystemConfig, TID
from repro.core.outcomes import Vote
from repro.mach.message import Message


@pytest.fixture
def system():
    return CamelotSystem(SystemConfig(sites={"a": 1}))


@pytest.fixture
def server(system):
    return system.server("server0@a")


def call(system, port, kind, **body):
    def body_gen():
        reply = yield from system.fabric.call(port, Message(kind=kind,
                                                            body=body),
                                              sender_site="a")
        return reply

    return system.run_process(body_gen(), timeout_ms=30_000.0)


def test_write_then_peek(system, server):
    reply = call(system, server.port, "operation",
                 tid="T1@a", op="write", object="x", value=5)
    assert reply.kind == "op_ok" and reply.body["value"] == 5
    assert server.peek("x") == 5


def test_read_returns_current_value(system, server):
    call(system, server.port, "operation", tid="T1@a", op="write",
         object="x", value=9)
    reply = call(system, server.port, "operation", tid="T1@a", op="read",
                 object="x")
    assert reply.body["value"] == 9


def test_unknown_op_raises(system, server):
    with pytest.raises(ValueError, match="unknown operation"):
        call(system, server.port, "operation", tid="T1@a", op="increment",
             object="x")


def test_first_op_joins_transaction(system, server):
    call(system, server.port, "operation", tid="T1@a", op="write",
         object="x", value=1)
    system.run_for(100.0)
    desc = system.tranman("a").families.descriptor(TID("T1@a"))
    assert desc is not None
    assert "server0@a" in desc.joined_servers


def test_join_sent_once_per_transaction(system, server):
    before = system.tracer.snapshot()
    for i in range(3):
        call(system, server.port, "operation", tid="T1@a", op="write",
             object=f"o{i}", value=i)
    delta = system.tracer.delta(before, system.tracer.snapshot())
    assert delta.get("server.join", 0) == 1


def test_update_logs_old_and_new_values(system, server):
    call(system, server.port, "operation", tid="T1@a", op="write",
         object="x", value=1)
    call(system, server.port, "operation", tid="T1@a", op="write",
         object="x", value=2)
    records = system.runtime("a").diskman.wal.buffered_records()
    updates = [r for r in records if r.kind.value == "update"]
    assert [(u.payload["old"], u.payload["new"]) for u in updates] == \
        [(None, 1), (1, 2)]


def test_prepare_votes_yes_with_writes(system, server):
    call(system, server.port, "operation", tid="T1@a", op="write",
         object="x", value=1)
    reply = call(system, server.port, "prepare", tid="T1@a")
    assert reply.body["vote"] == Vote.YES.value
    assert reply.body["max_lsn"] >= 1


def test_prepare_votes_read_only_without_writes(system, server):
    call(system, server.port, "operation", tid="T1@a", op="read",
         object="x")
    reply = call(system, server.port, "prepare", tid="T1@a")
    assert reply.body["vote"] == Vote.READ_ONLY.value


def test_prepare_covers_family_writes(system, server):
    child = str(TID("T1@a").child(1))
    call(system, server.port, "operation", tid=child, op="write",
         object="x", value=1)
    reply = call(system, server.port, "prepare", tid="T1@a")
    assert reply.body["vote"] == Vote.YES.value


def test_abort_restores_old_values_in_order(system, server):
    call(system, server.port, "operation", tid="T1@a", op="write",
         object="x", value=1)
    call(system, server.port, "operation", tid="T1@a", op="write",
         object="x", value=2)
    call(system, server.port, "abort", tid="T1@a")
    assert server.peek("x") is None


def test_abort_subtree_keeps_ancestor_writes(system, server):
    root, child = "T1@a", str(TID("T1@a").child(1))
    call(system, server.port, "operation", tid=root, op="write",
         object="x", value=1)
    call(system, server.port, "operation", tid=child, op="write",
         object="x", value=2)
    call(system, server.port, "abort", tid=child)
    assert server.peek("x") == 1


def test_drop_locks_releases_family(system, server):
    call(system, server.port, "operation", tid="T1@a", op="write",
         object="x", value=1)
    assert server.locks.locked_objects() == ["x"]
    call(system, server.port, "drop_locks", tid="T1@a")
    assert server.locks.locked_objects() == []
    assert server.peek("x") == 1  # values survive a commit


def test_load_state_replaces_values(server):
    server.load_state({"a": 1, "b": 2})
    assert server.peek("a") == 1 and server.peek("b") == 2
