"""Additional 2PC edge cases: recovery interplay, late messages, and
force/crash interleavings at the WAL level."""


from repro.core.messages import (
    CommitAck,
    CommitNotice,
    PrepareRequest,
    TxnInquiry,
    VoteResponse,
)
from repro.core.outcomes import Outcome, Vote
from repro.core.tid import TID
from repro.core.twophase import (
    CoordinatorState,
    TwoPhaseCoordinator,
    TwoPhaseSubordinate,
)

from tests.machine_harness import MachineHost

TID1 = TID("T1@a")


def test_recovered_coordinator_handles_duplicate_acks():
    machine = TwoPhaseCoordinator.recovered(TID1, "a", ["b"])
    host = MachineHost(machine)
    host.execute(machine.resume_notifications())
    host.deliver(CommitAck(tid=TID1, sender="b"))
    host.deliver(CommitAck(tid=TID1, sender="b"))
    assert host.forgotten == [TID1]


def test_recovered_coordinator_answers_inquiries():
    machine = TwoPhaseCoordinator.recovered(TID1, "a", ["b", "c"])
    host = MachineHost(machine)
    host.execute(machine.resume_notifications())
    host.deliver(TxnInquiry(tid=TID1, sender="c"))
    from repro.core.messages import InquiryResponse

    answers = [m for _, m in host.sent if isinstance(m, InquiryResponse)]
    assert answers and answers[0].outcome is Outcome.COMMITTED


def test_vote_arriving_during_commit_force_is_ignored():
    """A duplicate vote between the decision and the force completion
    must not re-trigger the decision."""
    host = MachineHost(TwoPhaseCoordinator(TID1, "a", ["b"])).start()
    host.local_prepared(Vote.YES)
    host.deliver(VoteResponse(tid=TID1, sender="b", vote=Vote.YES))
    assert host.machine.state is CoordinatorState.FORCING_COMMIT
    host.deliver(VoteResponse(tid=TID1, sender="b", vote=Vote.YES))
    assert len(host.forced) == 1
    host.complete_force()
    assert host.completions == [Outcome.COMMITTED]


def test_commit_notice_before_prepare_force_completes():
    """Cannot happen from a correct coordinator (it has no YES vote
    yet), but a duplicate/reordered notice must not corrupt the
    subordinate: it is ignored until PREPARED."""
    host = MachineHost(TwoPhaseSubordinate(TID1, "b", "a")).start()
    host.local_prepared(Vote.YES)
    # Force still pending.
    host.deliver(CommitNotice(tid=TID1, sender="a"))
    assert host.local_commits == []
    host.complete_force()
    # Now the real notice commits.
    host.deliver(CommitNotice(tid=TID1, sender="a"))
    assert host.local_commits == [TID1]


def test_prepare_retry_during_local_prepare_is_harmless():
    host = MachineHost(TwoPhaseSubordinate(TID1, "b", "a")).start()
    host.deliver(PrepareRequest(tid=TID1, sender="a"))  # duplicate
    assert host.sent == []  # no vote before the local prepare answers
    host.local_prepared(Vote.YES)
    host.complete_force()
    assert host.sent_kinds() == ["VoteResponse"]


def test_coordinator_multicast_retry_uses_unicast_for_stragglers():
    from repro.core.twophase import VOTE_TIMER

    host = MachineHost(TwoPhaseCoordinator(
        TID1, "a", ["b", "c", "d"], use_multicast=True)).start()
    host.local_prepared(Vote.YES)
    host.deliver(VoteResponse(tid=TID1, sender="b", vote=Vote.YES))
    host.deliver(VoteResponse(tid=TID1, sender="c", vote=Vote.YES))
    before = len(host.sent)
    host.fire_timer(VOTE_TIMER)
    retried = host.sent[before:]
    # Only the straggler is re-prepared.
    assert [dst for dst, _ in retried] == ["d"]


def test_abort_timer_tokens_do_not_cross_machines():
    """Firing an unknown timer token is a no-op on every machine."""
    coordinator = MachineHost(TwoPhaseCoordinator(TID1, "a", ["b"])).start()
    assert coordinator.machine.on_timer("bogus.token") == []
    sub = MachineHost(TwoPhaseSubordinate(TID1, "b", "a")).start()
    assert sub.machine.on_timer("bogus.token") == []
