"""Unit tests for the static-analysis formulas (paper Table 3, §4.3)."""

import pytest

from repro.analysis.primitives import rpc_breakdown_rows, table1_rows, table2_rows
from repro.analysis.static_analysis import (
    local_read_completion,
    local_update_completion,
    nonblocking_read_completion,
    nonblocking_update_completion,
    nonblocking_update_critical,
    path_counts,
    paxos_read_completion,
    paxos_update_completion,
    paxos_update_critical,
    twophase_read_completion,
    twophase_update_completion,
    twophase_update_critical,
)


def test_local_update_matches_paper_static():
    """Paper Table 3: 24.5 ms static for the local update."""
    assert local_update_completion().total == pytest.approx(24.5)


def test_local_read_matches_paper_static():
    """Paper: 9.5 ms static for the local read."""
    assert local_read_completion().total == pytest.approx(9.5)


def test_one_sub_update_near_paper_static():
    """Paper accounts 99.5 of 110 ms; our formula lands in that band
    (the exact split of minor terms differs — see EXPERIMENTS.md)."""
    total = twophase_update_completion(1).total
    assert 85.0 <= total <= 105.0


def test_update_critical_longer_than_completion():
    """'In Camelot, the critical path is always longer than the
    completion path.'"""
    for n in (1, 2, 3):
        assert (twophase_update_critical(n).total
                > twophase_update_completion(n).total)
        assert (nonblocking_update_critical(n).total
                > nonblocking_update_completion(n).total)


def test_force_counts_on_paths():
    """2 forces for 2PC, 4 for non-blocking (paper §4.3)."""
    two = twophase_update_critical(1)
    assert two.count_of("log force (subordinate prepare)") == 1
    forces_2pc = sum(t.count for t in two.terms if "log force" in t.name)
    nb = nonblocking_update_critical(1)
    forces_nb = sum(t.count for t in nb.terms if "log force" in t.name)
    assert (forces_2pc, forces_nb) == (2, 4)


def test_datagram_counts_on_paths():
    """3 datagrams for 2PC, 5 for non-blocking."""
    two = twophase_update_critical(1)
    dgs_2pc = sum(t.count for t in two.terms if "datagram" in t.name)
    nb = nonblocking_update_critical(1)
    dgs_nb = sum(t.count for t in nb.terms if "datagram" in t.name)
    assert (dgs_2pc, dgs_nb) == (3, 5)


def test_path_counts_table():
    assert path_counts("two_phase", "write", 1) == {"log_forces": 2,
                                                    "datagrams": 3}
    assert path_counts("non_blocking", "write", 1) == {"log_forces": 4,
                                                       "datagrams": 5}
    # Paxos Commit at F=0 degenerates to optimized 2PC exactly.
    assert path_counts("paxos_commit", "write", 1) == \
        path_counts("two_phase", "write", 1)
    assert path_counts("paxos_commit", "read", 1) == \
        path_counts("two_phase", "read", 1)
    assert path_counts("two_phase", "read", 1) == {"log_forces": 0,
                                                   "datagrams": 2}
    assert path_counts("non_blocking", "read", 0) == {"log_forces": 0,
                                                      "datagrams": 0}
    with pytest.raises(ValueError):
        path_counts("three_phase", "write", 1)


def test_paxos_f0_static_equals_2pc():
    """Gray & Lamport §4: with F=0, Paxos Commit is essentially 2PC —
    the static completion formula must collapse to the same total."""
    for n in (1, 2, 3):
        assert paxos_update_completion(n).total == \
            pytest.approx(twophase_update_completion(n).total)
    assert paxos_read_completion(1).total == \
        pytest.approx(twophase_read_completion(1).total)


def test_paxos_premium_grows_with_faults_tolerated():
    f0 = paxos_update_completion(2, faults_tolerated=0).total
    f1 = paxos_update_completion(2, faults_tolerated=1).total
    f2 = paxos_update_completion(2, faults_tolerated=2).total
    assert f0 < f1 < f2
    # The F=1 premium never exceeds the non-blocking protocol's cost.
    assert f1 <= nonblocking_update_completion(2).total
    assert (paxos_update_critical(2, faults_tolerated=1).total
            > paxos_update_completion(2, faults_tolerated=1).total)


def test_path_counts_unknown_op_raises():
    """An unknown op must not silently fall through to the write table."""
    with pytest.raises(ValueError, match="unknown op"):
        path_counts("two_phase", "banana", 1)
    with pytest.raises(ValueError, match="unknown op"):
        path_counts("non_blocking", "", 1)


def test_path_counts_unknown_protocol_raises_before_op():
    """Protocol is validated even for read ops (no read shortcut past
    the protocol check)."""
    with pytest.raises(ValueError, match="unknown protocol"):
        path_counts("three_phase", "read", 1)


@pytest.mark.parametrize("protocol,builder", [
    ("two_phase", twophase_update_critical),
    ("non_blocking", nonblocking_update_critical),
])
@pytest.mark.parametrize("n_subs", [1, 2, 3])
def test_formula_primitives_match_path_counts(protocol, builder, n_subs):
    """The Table-3 formulas and the §4.3 count table must agree on the
    number of critical-path primitives *per kind* for both protocols.

    Datagram terms in the formulas are per-subordinate-round (count 1
    regardless of fan-out: parallel sends), so the distinct datagram
    rounds — not the fan-out-weighted count — must match the table.
    """
    path = builder(n_subs)
    counts = path_counts(protocol, "write", n_subs)
    force_terms = sum(t.count for t in path.terms if "log force" in t.name)
    datagram_rounds = sum(1 for t in path.terms if "datagram" in t.name)
    assert force_terms == counts["log_forces"]
    assert datagram_rounds == counts["datagrams"]


def test_count_of_sums_duplicate_terms():
    path = twophase_update_critical(2)
    # One prepare datagram round regardless of fan-out...
    assert path.count_of("datagram (prepare)") == 1
    # ...and zero occurrences of an unknown primitive.
    assert path.count_of("no-such-primitive") == 0
    # count_of sums across repeated terms of the same name.
    from repro.analysis.static_analysis import PathTerm, StaticPath
    dup = StaticPath("dup", [PathTerm("x", 2, 1.0), PathTerm("x", 3, 1.0)])
    assert dup.count_of("x") == 5


def test_rows_formatting_details():
    """rows() renders one aligned line per term plus a TOTAL line whose
    value equals the path total."""
    path = twophase_update_completion(1)
    rows = path.rows()
    assert len(rows) == len(path.terms) + 1
    for term, row in zip(path.terms, rows):
        assert row.startswith(term.name)
        assert f"x{term.count:<4g}" in row
        assert f"{term.total:7.1f} ms" in row
    total_row = rows[-1]
    assert total_row.startswith("TOTAL " + path.label)
    assert f"{path.total:7.1f} ms" in total_row


def test_nb_ratio_roughly_two_to_one():
    """'The critical path of the non-blocking protocol is about twice
    the length of that of two-phase commit' — on the protocol-only
    portion (excluding begin/ops)."""
    def protocol_only(path, n):
        ops = [t.total for t in path.terms
               if "operation" in t.name or "begin" in t.name]
        return path.total - sum(ops)

    two = protocol_only(twophase_update_critical(1), 1)
    nb = protocol_only(nonblocking_update_critical(1), 1)
    assert 1.6 <= nb / two <= 2.2


def test_read_only_nb_equals_2pc_read():
    """'A transaction that is completely read-only has the same critical
    path performance as in two-phase commitment.'"""
    assert (nonblocking_read_completion(2).total
            == twophase_read_completion(2).total)


def test_completion_grows_with_subordinates():
    totals = [twophase_update_completion(n).total for n in range(4)]
    assert totals == sorted(totals)
    assert totals[3] > totals[0]


def test_rows_render():
    path = local_update_completion()
    rows = path.rows()
    assert any("TOTAL" in r for r in rows)
    assert len(rows) == len(path.terms) + 1


# ------------------------------------------------------- primitives


def test_table1_has_paper_rows():
    rows = {r.name: r for r in table1_rows()}
    assert rows["Procedure call, 32-byte arg"].value == 12.0
    assert rows["Remote IPC, 8-byte in-line"].value == 19.1
    assert rows["Raw disk write, 1 track"].value == 26.8


def test_table2_remote_rpc_row_is_29ms():
    rows = {r.name: r for r in table2_rows()}
    assert rows["Remote RPC"].value == pytest.approx(29.0)
    assert rows["Log force"].value == 15.0


def test_rpc_breakdown_sums_to_28_5():
    rows = rpc_breakdown_rows()
    assert rows[-1].name == "Total Camelot RPC"
    assert rows[-1].value == pytest.approx(28.5)
    assert sum(r.value for r in rows[:-1]) == pytest.approx(28.5)
