"""Unit tests for generator-based simulated processes."""

import pytest

from repro.sim.events import SimEvent
from repro.sim.kernel import Kernel, SimulationError
from repro.sim.process import Process, ProcessKilled, Sleep, Wait

from tests.conftest import run_proc


def test_sleep_advances_virtual_time():
    k = Kernel()

    def body():
        yield Sleep(10.0)
        yield Sleep(5.0)
        return k.now

    assert run_proc(k, body()) == 15.0


def test_return_value_published_on_done():
    k = Kernel()

    def body():
        yield Sleep(1.0)
        return "result"

    proc = Process(k, body())
    k.run()
    assert proc.done.triggered
    assert proc.done.value == "result"
    assert not proc.alive


def test_wait_on_event_receives_value():
    k = Kernel()
    ev = SimEvent(k)

    def body():
        value = yield Wait(ev)
        return value

    proc = Process(k, body())
    k.schedule(5.0, ev.trigger, "hello")
    k.run()
    assert proc.done.value == "hello"


def test_bare_event_yield_is_wait_shorthand():
    k = Kernel()
    ev = SimEvent(k)

    def body():
        value = yield ev
        return value

    proc = Process(k, body())
    ev.trigger(7)
    k.run()
    assert proc.done.value == 7


def test_yield_from_subroutine():
    k = Kernel()

    def helper():
        yield Sleep(3.0)
        return 10

    def body():
        a = yield from helper()
        b = yield from helper()
        return a + b

    assert run_proc(k, body()) == 20
    assert k.now == 6.0


def test_invalid_yield_raises():
    k = Kernel()

    def body():
        yield 42

    Process(k, body())
    with pytest.raises(SimulationError, match="yielded"):
        k.run()


def test_exception_propagates_out_of_run():
    k = Kernel()

    def body():
        yield Sleep(1.0)
        raise ValueError("boom")

    Process(k, body())
    with pytest.raises(ValueError, match="boom"):
        k.run()


def test_kill_stops_process():
    k = Kernel()
    progress = []

    def body():
        progress.append("start")
        yield Sleep(10.0)
        progress.append("end")

    proc = Process(k, body())
    k.schedule(5.0, proc.kill)
    k.run()
    assert progress == ["start"]
    assert not proc.alive
    assert proc.done.value is None


def test_killed_process_sees_processkilled():
    k = Kernel()
    cleaned = []

    def body():
        try:
            yield Sleep(10.0)
        except ProcessKilled:
            cleaned.append(True)
            raise

    proc = Process(k, body())
    k.schedule(1.0, proc.kill)
    k.run()
    assert cleaned == [True]


def test_processkilled_not_caught_by_except_exception():
    k = Kernel()
    caught = []

    def body():
        try:
            yield Sleep(10.0)
        except Exception:  # noqa: BLE001 - the point of the test
            caught.append("wrong")

    proc = Process(k, body())
    k.schedule(1.0, proc.kill)
    k.run()
    assert caught == []


def test_event_cannot_resurrect_killed_process():
    k = Kernel()
    ev = SimEvent(k)
    progress = []

    def body():
        yield Wait(ev)
        progress.append("resumed")

    proc = Process(k, body())
    proc.kill()
    ev.trigger("late")
    k.run()
    assert progress == []


def test_kill_is_idempotent():
    k = Kernel()

    def body():
        yield Sleep(1.0)

    proc = Process(k, body())
    proc.kill()
    proc.kill()
    k.run()
    assert not proc.alive


def test_negative_sleep_rejected():
    with pytest.raises(SimulationError):
        Sleep(-0.5)
