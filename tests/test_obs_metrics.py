"""repro.obs.metrics: counters, time-weighted gauges, histograms."""

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, Registry
from repro.obs.spans import SpanRecorder


def test_counter_monotonic():
    c = Counter("x")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_time_weighted_mean():
    g = Gauge("depth")
    g.set(0.0, 0.0)
    g.set(10.0, 2.0)
    g.set(20.0, 0.0)
    # Level 0 for 10 ms, level 2 for 10 ms, level 0 for 10 ms.
    assert g.time_weighted_mean(until=30.0) == pytest.approx(2.0 / 3.0)
    assert g.busy_fraction(until=30.0) == pytest.approx(1.0 / 3.0)


def test_gauge_busy_fraction_trailing_level():
    g = Gauge("depth")
    g.set(0.0, 1.0)
    assert g.busy_fraction(until=10.0) == pytest.approx(1.0)
    assert g.time_weighted_mean(until=10.0) == pytest.approx(1.0)


def test_gauge_empty_and_degenerate():
    g = Gauge("depth")
    assert g.time_weighted_mean() == 0.0
    assert g.busy_fraction() == 0.0
    assert g.last is None and g.max is None
    g.set(5.0, 3.0)
    assert g.time_weighted_mean() == pytest.approx(3.0)
    assert g.last == 3.0 and g.max == 3.0


def test_histogram_exact_quantiles_on_short_runs():
    h = Histogram("lat")
    for v in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]:
        h.observe(v)
    assert h.n == 10
    assert h.mean == pytest.approx(5.5)
    assert h.min == 1.0 and h.max == 10.0
    assert h.p50 == pytest.approx(6.0)   # exact retained samples
    assert h.p99 == pytest.approx(10.0)


def test_histogram_interpolates_past_exact_cap():
    h = Histogram("lat", bounds=(10.0, 20.0, 30.0))
    for _ in range(Histogram.EXACT_CAP + 1000):
        h.observe(15.0)
    # All mass in (10, 20]: interpolation stays inside that bucket.
    assert 10.0 <= h.p50 <= 20.0
    assert 10.0 <= h.p95 <= 20.0


def test_histogram_rejects_bad_quantile():
    h = Histogram("lat")
    with pytest.raises(ValueError):
        h.quantile(1.5)
    assert h.quantile(0.5) == 0.0  # empty histogram


def test_registry_idempotent_names():
    reg = Registry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.gauge("g") is reg.gauge("g")
    assert reg.histogram("h") is reg.histogram("h")


def test_registry_load_recorder_folds_counts_and_gauges():
    rec = SpanRecorder()
    rec.add(0.0, 15.0, "log.force", site="a")
    rec.add(15.0, 30.0, "log.force", site="a")
    rec.gauge(1.0, "lan.in_flight", 1)
    rec.gauge(2.0, "lan.in_flight", 0)
    reg = Registry()
    reg.load_recorder(rec)
    assert reg.counter("spans.log.force").value == 2
    assert reg.gauge("lan.in_flight").samples == [(1.0, 1), (2.0, 0)]
