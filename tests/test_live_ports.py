"""repro.live.ports: the port hygiene that keeps live clusters off the
flaky-CI treadmill — ephemeral binds, EADDRINUSE fallback, and the
atomic port-file handshake restarted sites use to find each other."""

import socket
import threading

import pytest

from repro.live.ports import (
    bind_server_socket,
    clear_port_file,
    port_file,
    read_port_file,
    wait_port_file,
    write_port_file,
)


class TestBind:
    def test_ephemeral_bind_gets_a_real_port(self):
        sock = bind_server_socket()
        try:
            host, port = sock.getsockname()
            assert host == "127.0.0.1"
            assert 0 < port < 65536
        finally:
            sock.close()

    def test_two_ephemeral_binds_never_collide(self):
        a = bind_server_socket()
        b = bind_server_socket()
        try:
            assert a.getsockname()[1] != b.getsockname()[1]
        finally:
            a.close()
            b.close()

    def test_busy_explicit_port_falls_back_to_ephemeral(self):
        holder = socket.socket()
        holder.bind(("127.0.0.1", 0))
        holder.listen(1)
        busy = holder.getsockname()[1]
        try:
            sock = bind_server_socket(port=busy, attempts=2)
            try:
                # Preference unsatisfiable -> some other free port, not
                # an exception: the port file repairs discovery.
                assert sock.getsockname()[1] != busy
            finally:
                sock.close()
        finally:
            holder.close()

    def test_free_explicit_port_is_honoured(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        want = probe.getsockname()[1]
        probe.close()
        sock = bind_server_socket(port=want, attempts=1)
        try:
            assert sock.getsockname()[1] == want
        finally:
            sock.close()


class TestPortFiles:
    def test_write_then_read(self, tmp_path):
        write_port_file(str(tmp_path), "alpha", 12345)
        assert read_port_file(str(tmp_path), "alpha") == 12345

    def test_missing_reads_none(self, tmp_path):
        assert read_port_file(str(tmp_path), "ghost") is None

    def test_garbage_reads_none(self, tmp_path):
        (tmp_path / "alpha.port").write_text("not a port\n")
        assert read_port_file(str(tmp_path), "alpha") is None
        (tmp_path / "beta.port").write_text("99999999\n")
        assert read_port_file(str(tmp_path), "beta") is None

    def test_rewrite_is_atomic_replace(self, tmp_path):
        write_port_file(str(tmp_path), "alpha", 1111)
        write_port_file(str(tmp_path), "alpha", 2222)
        assert read_port_file(str(tmp_path), "alpha") == 2222
        # No temp droppings left behind.
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name != "alpha.port"]
        assert leftovers == []

    def test_clear_is_idempotent(self, tmp_path):
        write_port_file(str(tmp_path), "alpha", 1111)
        clear_port_file(str(tmp_path), "alpha")
        assert read_port_file(str(tmp_path), "alpha") is None
        clear_port_file(str(tmp_path), "alpha")  # second time: no error

    def test_wait_blocks_until_published(self, tmp_path):
        def publish_late():
            write_port_file(str(tmp_path), "gamma", 4321)

        timer = threading.Timer(0.15, publish_late)
        timer.start()
        try:
            assert wait_port_file(str(tmp_path), "gamma",
                                  timeout_s=5.0) == 4321
        finally:
            timer.cancel()

    def test_wait_times_out(self, tmp_path):
        with pytest.raises(TimeoutError):
            wait_port_file(str(tmp_path), "never", timeout_s=0.2)

    def test_path_shape(self, tmp_path):
        assert port_file(str(tmp_path), "x").endswith("/x.port")
