"""Legacy setup shim.

The build environment has setuptools but no ``wheel``, so PEP 517
editable installs fail; this shim enables
``pip install -e . --no-use-pep517 --no-build-isolation``.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
