"""Harness health: the simulator itself must stay fast.

Not a paper figure — a guard that keeps the experiment suite usable.
The full Figure 2-5 regeneration runs hundreds of simulated seconds;
if kernel event dispatch or the transaction path regresses badly, every
experiment silently turns into a coffee break.  This bench pins
per-transaction host cost to an order of magnitude.
"""

import time

from repro import CamelotSystem, SystemConfig
from repro.bench.workloads import serial_minimal_txns
from repro.sim.kernel import Kernel

from benchmarks.conftest import emit


def test_kernel_event_throughput(benchmark):
    def spin():
        kernel = Kernel()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 50_000:
                kernel.schedule(1.0, tick)

        kernel.schedule(0.0, tick)
        kernel.run()
        return count

    events = benchmark.pedantic(spin, rounds=1, iterations=1)
    assert events == 50_000


def test_transaction_host_cost(benchmark):
    def run_txns():
        system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1},
                                            keep_trace_events=False))
        app = system.application("a")
        committed = system.run_process(
            serial_minimal_txns(app, system.default_services(), 50),
            timeout_ms=600_000.0)
        return committed

    start = time.perf_counter()
    committed = benchmark.pedantic(run_txns, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    assert committed == 50
    per_txn_ms = elapsed * 1000.0 / 50
    emit(f"host cost: {per_txn_ms:.2f} ms of real time per simulated "
         "distributed transaction")
    # Order-of-magnitude guard: a distributed transaction should cost
    # well under 50 ms of host time (typically ~2 ms).
    assert per_txn_ms < 50.0
