"""Harness health: the simulator itself must stay fast.

Not a paper figure — a guard that keeps the experiment suite usable.
The full Figure 2-5 regeneration runs hundreds of simulated seconds;
if kernel event dispatch or the transaction path regresses badly, every
experiment silently turns into a coffee break.  This bench pins
per-transaction host cost to an order of magnitude, enforces a kernel
dispatch-rate floor so hot-path regressions fail loudly, and emits the
machine-readable ``BENCH_harness.json`` that tracks the perf trajectory
across PRs (per-txn host cost, kernel events/sec, figure-regeneration
wall time, parallel speedup).
"""

import json
import time
from pathlib import Path

from repro import CamelotSystem, SystemConfig
from repro.bench.figures import figure2_cells
from repro.bench.parallel import run_cells
from repro.bench.workloads import serial_minimal_txns
from repro.obs.spans import SpanRecorder
from repro.sim.kernel import Kernel
from repro.sim.tracing import NullTracer, Tracer

from benchmarks.conftest import emit

# Dispatch-rate floor (events of simulated work per host second).  The
# growth seed ran the schedule() spin at ~1.09M ev/s on the reference
# container and the list-keyed heap lifted fire-and-forget dispatch to
# ~2.4M ev/s there; the floor sits far enough below that slow CI runners
# pass while an accidental O(n) regression (or a Python-level __lt__
# creeping back into the heap) still fails loudly.
KERNEL_EVENTS_PER_SEC_FLOOR = 500_000.0

# Same-host seed baselines (reference container, commit 4ce7758),
# recorded so BENCH_harness.json can report speedups across PRs.
SEED_SCHEDULE_EVENTS_PER_SEC = 1_090_000.0
SEED_PER_TXN_HOST_MS = 0.83

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_harness.json"
_results: dict = {}


def _spin_rate(use_post: bool, n: int = 50_000) -> float:
    """Events/sec for a self-rescheduling ticker (the classic heap spin)."""
    kernel = Kernel()
    count = 0

    if use_post:
        def tick():
            nonlocal count
            count += 1
            if count < n:
                kernel.post(1.0, tick)
    else:
        def tick():
            nonlocal count
            count += 1
            if count < n:
                kernel.schedule(1.0, tick)

    kernel.schedule(0.0, tick)
    start = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - start
    assert count == n
    return n / elapsed


def test_kernel_event_throughput(benchmark):
    def spin():
        kernel = Kernel()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 50_000:
                kernel.schedule(1.0, tick)

        kernel.schedule(0.0, tick)
        kernel.run()
        return count

    events = benchmark.pedantic(spin, rounds=1, iterations=1)
    assert events == 50_000


def test_kernel_dispatch_rate_floor():
    """Hot-path guard: dispatch below the floor fails the suite."""
    schedule_rate = max(_spin_rate(use_post=False) for _ in range(3))
    post_rate = max(_spin_rate(use_post=True) for _ in range(3))
    _results["kernel_schedule_events_per_sec"] = round(schedule_rate)
    _results["kernel_post_events_per_sec"] = round(post_rate)
    _results["kernel_speedup_vs_seed"] = round(
        post_rate / SEED_SCHEDULE_EVENTS_PER_SEC, 2)
    emit(f"kernel dispatch: schedule {schedule_rate:,.0f} ev/s, "
         f"post {post_rate:,.0f} ev/s "
         f"(floor {KERNEL_EVENTS_PER_SEC_FLOOR:,.0f})")
    assert post_rate >= KERNEL_EVENTS_PER_SEC_FLOOR, (
        f"kernel dispatch regressed: {post_rate:,.0f} ev/s is below the "
        f"{KERNEL_EVENTS_PER_SEC_FLOOR:,.0f} ev/s floor")
    assert schedule_rate >= KERNEL_EVENTS_PER_SEC_FLOOR * 0.8


def test_transaction_host_cost(benchmark):
    def run_txns():
        system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1},
                                            keep_trace_events=False))
        app = system.application("a")
        committed = system.run_process(
            serial_minimal_txns(app, system.default_services(), 50),
            timeout_ms=600_000.0)
        return committed

    start = time.perf_counter()
    committed = benchmark.pedantic(run_txns, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    assert committed == 50
    per_txn_ms = elapsed * 1000.0 / 50
    _results["per_txn_host_cost_ms"] = round(per_txn_ms, 3)
    emit(f"host cost: {per_txn_ms:.2f} ms of real time per simulated "
         "distributed transaction")
    # Order-of-magnitude guard: a distributed transaction should cost
    # well under 50 ms of host time (typically ~2 ms).
    assert per_txn_ms < 50.0


def _txn_workload_seconds(tracer, recorder=None, n: int = 120) -> float:
    """Host seconds for ``n`` serial distributed transactions."""
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1},
                                        keep_trace_events=False),
                           tracer=tracer)
    if recorder is not None:
        system.tracer.attach_obs(recorder)
    app = system.application("a")
    start = time.perf_counter()
    committed = system.run_process(
        serial_minimal_txns(app, system.default_services(), n),
        timeout_ms=600_000.0)
    elapsed = time.perf_counter() - start
    assert committed == n
    return elapsed


def test_tracing_overhead_floor():
    """Count-only span instrumentation must stay within 5% of untraced.

    The span hooks in the substrates are guarded by a single attribute
    test (``tracer.obs is not None``); with a count-only SpanRecorder
    attached the layer degrades to counter-stub calls (the recorder
    rebinds its recording surface in ``__init__``).  Both legs run a
    NullTracer so the ratio bounds exactly the span layer, not the
    tracer's own pre-existing counting.

    Shared-container noise swamps single runs (the same workload
    drifts +-30% between batches), so each measurement block
    interleaves baseline/counted pairs and compares the minima —
    alternating makes both legs sample the same load epochs.  Noise
    only ever *inflates* a leg, so a block that lands under the
    ceiling is sound evidence the true ratio is under it; a block over
    the ceiling may just mean the counted leg never hit a quiet
    window, hence up to three blocks, keeping the best.
    """
    ratio = float("inf")
    for _block in range(3):
        baselines, counteds = [], []
        for _ in range(10):
            baselines.append(_txn_workload_seconds(NullTracer()))
            counteds.append(_txn_workload_seconds(
                NullTracer(), recorder=SpanRecorder(keep=False)))
        ratio = min(ratio, min(counteds) / min(baselines))
        if ratio <= 1.05:
            break
    _results["tracing_overhead_ratio"] = round(ratio, 3)
    emit(f"tracing overhead: count-only span layer {ratio:.3f}x over "
         f"untraced (ceiling 1.05x)")
    assert ratio <= 1.05, (
        f"count-only span instrumentation costs {ratio:.3f}x over an "
        f"untraced run; the layer must stay within 5% when spans are off")


def test_figure_regeneration_speedup():
    """Wall time of a reduced Figure 2 sweep, serial vs fanned.

    On a single-core container the pool adds overhead instead of
    speedup, so only equality of results is asserted; the measured
    ratio is recorded in BENCH_harness.json either way (the ≥3x target
    is a 4-core figure).
    """
    cells = [c for _, _, c in figure2_cells(trials=6)]

    start = time.perf_counter()
    serial = run_cells(cells, jobs=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    fanned = run_cells(cells, jobs=4)
    fanned_s = time.perf_counter() - start

    assert [o.value for o in serial] == [o.value for o in fanned]
    _results["figure2_serial_wall_s"] = round(serial_s, 3)
    _results["figure2_jobs4_wall_s"] = round(fanned_s, 3)
    _results["parallel_speedup"] = round(serial_s / fanned_s, 2)
    emit(f"figure2 sweep: serial {serial_s:.2f}s, jobs=4 {fanned_s:.2f}s "
         f"({serial_s / fanned_s:.2f}x)")


def test_emit_bench_harness_json():
    """Last in file: persist the perf numbers gathered above."""
    payload = {
        "seed_baselines": {
            "kernel_schedule_events_per_sec": SEED_SCHEDULE_EVENTS_PER_SEC,
            "per_txn_host_cost_ms": SEED_PER_TXN_HOST_MS,
        },
        **_results,
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True)
                             + "\n")
    emit(f"wrote {_RESULTS_PATH.name}: "
         + json.dumps(_results, sort_keys=True))
    assert _results.get("kernel_post_events_per_sec", 0) > 0
