"""Harness health: the simulator itself must stay fast.

Not a paper figure — a guard that keeps the experiment suite usable.
The full Figure 2-5 regeneration runs hundreds of simulated seconds;
if kernel event dispatch or the transaction path regresses badly, every
experiment silently turns into a coffee break.  This bench pins
per-transaction host cost to an order of magnitude, enforces a kernel
dispatch-rate floor so hot-path regressions fail loudly, and emits the
machine-readable ``BENCH_harness.json`` that tracks the perf trajectory
across PRs (per-txn host cost, kernel events/sec, figure-regeneration
wall time, parallel speedup).
"""

import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path

from repro import CamelotSystem, SystemConfig
from repro.bench.figures import figure2_cells, figure4_cells
from repro.bench.parallel import run_cells, warm_pool
from repro.bench.report import render_speedups
from repro.bench.workloads import serial_minimal_txns
from repro.obs.spans import SpanRecorder
from repro.sim.kernel import Kernel
from repro.sim.tracing import NullTracer, Tracer

from benchmarks.conftest import emit

# Dispatch-rate floor (events of simulated work per host second).  The
# growth seed ran the schedule() spin at ~1.09M ev/s on the reference
# container and the list-keyed heap lifted fire-and-forget dispatch to
# ~2.4M ev/s there; the floor sits far enough below that slow CI runners
# pass while an accidental O(n) regression (or a Python-level __lt__
# creeping back into the heap) still fails loudly.
KERNEL_EVENTS_PER_SEC_FLOOR = 500_000.0

# Floor for the self-rescheduling schedule() spin specifically.  The
# timer wheel lifted it from the seed's ~1.09M ev/s to ~1.5M ev/s on the
# reference container; a revert to the pure-heap path lands back at the
# seed mark and fails this, while the margin absorbs CI runner noise.
KERNEL_SCHEDULE_EVENTS_PER_SEC_FLOOR = 1_250_000.0

# The figure-suite pool must beat serial regeneration by this much on
# any multi-core host.  Single-core hosts cannot see a speedup from
# process fan-out, so there the ratio is recorded but not gated.
PARALLEL_SPEEDUP_FLOOR = 1.5

# Open-loop guard rails: measured throughput must track offered load
# (the run is well under saturation), and the whole CLI process —
# interpreter, import, 10k-transaction run, streaming obs — must stay
# within a ceiling that an O(txns) memory regression would blow through.
OPENLOOP_SITES = 24
OPENLOOP_RATE_TPS = 300.0
OPENLOOP_TXNS = 10_000
OPENLOOP_TPS_FLOOR_FRACTION = 0.8
OPENLOOP_PEAK_RSS_MB_CEILING = 96.0

# Same-host seed baselines (reference container, commit 4ce7758),
# recorded so BENCH_harness.json can report speedups across PRs.
SEED_SCHEDULE_EVENTS_PER_SEC = 1_090_000.0
SEED_PER_TXN_HOST_MS = 0.83

_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_harness.json"
_results: dict = {}


def _spin_rate(use_post: bool, n: int = 25_000) -> float:
    """Events/sec for a self-rescheduling ticker (the classic heap spin).

    25k events is ~20 ms of host time: short enough that a trial can
    land wholly inside a quiet window on a noisy shared host, so the
    best-of-N aggregate measures the kernel, not the neighbours.
    """
    kernel = Kernel()
    count = 0

    if use_post:
        def tick():
            nonlocal count
            count += 1
            if count < n:
                kernel.post(1.0, tick)
    else:
        def tick():
            nonlocal count
            count += 1
            if count < n:
                kernel.schedule(1.0, tick)

    kernel.schedule(0.0, tick)
    start = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - start
    assert count == n
    return n / elapsed


def test_kernel_event_throughput(benchmark):
    def spin():
        kernel = Kernel()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 50_000:
                kernel.schedule(1.0, tick)

        kernel.schedule(0.0, tick)
        kernel.run()
        return count

    events = benchmark.pedantic(spin, rounds=1, iterations=1)
    assert events == 50_000


def test_kernel_dispatch_rate_floor():
    """Hot-path guard: dispatch below the floors fails the suite.

    Best-of-twelve per spin: the spin is a pure hot-loop microbenchmark,
    so its true rate is the *fastest* observation — slower samples
    measure scheduler preemption and shared-host noise, not the kernel.
    """
    schedule_rate = max(_spin_rate(use_post=False) for _ in range(12))
    post_rate = max(_spin_rate(use_post=True) for _ in range(12))
    _results["kernel_schedule_events_per_sec"] = round(schedule_rate)
    _results["kernel_post_events_per_sec"] = round(post_rate)
    _results["kernel_speedup_vs_seed"] = round(
        post_rate / SEED_SCHEDULE_EVENTS_PER_SEC, 2)
    emit(f"kernel dispatch: schedule {schedule_rate:,.0f} ev/s "
         f"(floor {KERNEL_SCHEDULE_EVENTS_PER_SEC_FLOOR:,.0f}), "
         f"post {post_rate:,.0f} ev/s "
         f"(floor {KERNEL_EVENTS_PER_SEC_FLOOR:,.0f})")
    assert post_rate >= KERNEL_EVENTS_PER_SEC_FLOOR, (
        f"kernel dispatch regressed: {post_rate:,.0f} ev/s is below the "
        f"{KERNEL_EVENTS_PER_SEC_FLOOR:,.0f} ev/s floor")
    assert schedule_rate >= KERNEL_SCHEDULE_EVENTS_PER_SEC_FLOOR, (
        f"kernel schedule() spin regressed: {schedule_rate:,.0f} ev/s is "
        f"below the {KERNEL_SCHEDULE_EVENTS_PER_SEC_FLOOR:,.0f} ev/s "
        f"floor (timer wheel reverted to heap dispatch?)")


def test_transaction_host_cost(benchmark):
    def run_txns():
        system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1},
                                            keep_trace_events=False))
        app = system.application("a")
        committed = system.run_process(
            serial_minimal_txns(app, system.default_services(), 50),
            timeout_ms=600_000.0)
        return committed

    start = time.perf_counter()
    committed = benchmark.pedantic(run_txns, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    assert committed == 50
    per_txn_ms = elapsed * 1000.0 / 50
    _results["per_txn_host_cost_ms"] = round(per_txn_ms, 3)
    emit(f"host cost: {per_txn_ms:.2f} ms of real time per simulated "
         "distributed transaction")
    # Order-of-magnitude guard: a distributed transaction should cost
    # well under 50 ms of host time (typically ~2 ms).
    assert per_txn_ms < 50.0


def _txn_workload_seconds(tracer, recorder=None, n: int = 120) -> float:
    """Host seconds for ``n`` serial distributed transactions."""
    system = CamelotSystem(SystemConfig(sites={"a": 1, "b": 1},
                                        keep_trace_events=False),
                           tracer=tracer)
    if recorder is not None:
        system.tracer.attach_obs(recorder)
    app = system.application("a")
    start = time.perf_counter()
    committed = system.run_process(
        serial_minimal_txns(app, system.default_services(), n),
        timeout_ms=600_000.0)
    elapsed = time.perf_counter() - start
    assert committed == n
    return elapsed


def test_tracing_overhead_floor():
    """Count-only span instrumentation must stay within 5% of untraced.

    The span hooks in the substrates are guarded by a single attribute
    test (``tracer.obs is not None``); with a count-only SpanRecorder
    attached the layer degrades to counter-stub calls (the recorder
    rebinds its recording surface in ``__init__``).  Both legs run a
    NullTracer so the ratio bounds exactly the span layer, not the
    tracer's own pre-existing counting.

    Shared-container noise swamps single runs (the same workload
    drifts +-30% between batches), so each measurement block
    interleaves baseline/counted pairs and compares the minima —
    alternating makes both legs sample the same load epochs.  Noise
    only ever *inflates* a leg, so a block that lands under the
    ceiling is sound evidence the true ratio is under it; a block over
    the ceiling may just mean the counted leg never hit a quiet
    window, hence up to three blocks, keeping the best.
    """
    ratio = float("inf")
    for _block in range(3):
        baselines, counteds = [], []
        for _ in range(10):
            baselines.append(_txn_workload_seconds(NullTracer()))
            counteds.append(_txn_workload_seconds(
                NullTracer(), recorder=SpanRecorder(keep=False)))
        ratio = min(ratio, min(counteds) / min(baselines))
        if ratio <= 1.05:
            break
    _results["tracing_overhead_ratio"] = round(ratio, 3)
    emit(f"tracing overhead: count-only span layer {ratio:.3f}x over "
         f"untraced (ceiling 1.05x)")
    assert ratio <= 1.05, (
        f"count-only span instrumentation costs {ratio:.3f}x over an "
        f"untraced run; the layer must stay within 5% when spans are off")


def test_figure_regeneration_speedup():
    """Per-figure wall time of reduced sweeps, serial vs warm pool.

    The pool is warmed (workers spawned, ``repro.system`` imported, cost
    profiles built) *before* the timed region: the measurement gates the
    steady-state figure-regeneration speedup, not worker startup, which
    a full-suite run pays once.  On any multi-core host the aggregate
    speedup must clear :data:`PARALLEL_SPEEDUP_FLOOR`; a single-core
    container cannot see fan-out gains, so there the ratio is recorded
    in BENCH_harness.json but not gated.  Result equality is asserted
    everywhere — parallel regeneration must be indistinguishable from
    serial.
    """
    figures = {
        "figure2": [c for _, _, c in figure2_cells(trials=6)],
        "figure4": [c for _, c in figure4_cells(pairs_range=(1, 2),
                                                duration_ms=2_000.0)],
    }
    jobs = 4
    warm_pool(jobs)

    timings = {}
    for name, cells in figures.items():
        start = time.perf_counter()
        serial = run_cells(cells, jobs=1)
        serial_s = time.perf_counter() - start

        start = time.perf_counter()
        fanned = run_cells(cells, jobs=jobs)
        fanned_s = time.perf_counter() - start

        assert [o.value for o in serial] == [o.value for o in fanned], (
            f"{name}: parallel regeneration diverged from serial")
        timings[name] = (serial_s, fanned_s)

    emit(render_speedups(timings))
    serial_total = sum(s for s, _ in timings.values())
    fanned_total = sum(f for _, f in timings.values())
    speedup = serial_total / fanned_total
    _results["figure2_serial_wall_s"] = round(timings["figure2"][0], 3)
    _results["figure2_jobs4_wall_s"] = round(timings["figure2"][1], 3)
    _results["parallel_speedup"] = round(speedup, 2)
    _results["parallel_speedup_cpus"] = os.cpu_count() or 1
    cpus = os.cpu_count() or 1
    if cpus >= 2:
        assert speedup >= PARALLEL_SPEEDUP_FLOOR, (
            f"warm pool regenerates the figure suite only {speedup:.2f}x "
            f"faster than serial on {cpus} CPUs; the floor is "
            f"{PARALLEL_SPEEDUP_FLOOR}x")
    else:
        # parallel_speedup_cpus above still records the machine shape,
        # so a skipped gate is visible in the artifact, not silent.
        emit(f"parallel_speedup gate skipped ({cpus} cpus)")


def test_open_loop_throughput_and_memory():
    """Open-loop guard: throughput tracks offered load, memory stays flat.

    Runs the ``repro.bench`` CLI in a fresh interpreter so peak RSS is
    the open-loop run's own footprint — not this pytest process with
    every prior benchmark's allocations folded into ``ru_maxrss``.  The
    run is 10k transactions; the streaming-obs design keeps its RSS
    identical to a 1M-transaction run (everything per-transaction is
    dropped at completion), so the ceiling guards the whole bounded-
    memory discipline, and an O(txns) regression (retained spans,
    unpruned tombstones, WAL without checkpoints) shows up here long
    before anyone reruns the million-transaction demo.
    """
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench", "--open-loop",
         "--sites", str(OPENLOOP_SITES),
         "--rate", str(OPENLOOP_RATE_TPS),
         "--txns", str(OPENLOOP_TXNS)],
        capture_output=True, text=True, timeout=1200,
        env={**os.environ,
             "PYTHONPATH": str(Path(__file__).resolve().parent.parent
                               / "src")})
    assert proc.returncode == 0, (
        f"open-loop run left transactions unfinished:\n{proc.stdout}"
        f"\n{proc.stderr}")
    tps = float(re.search(r"measured tps\s+([\d.]+)", proc.stdout).group(1))
    rss = float(re.search(r"peak RSS: ([\d.]+) MiB", proc.stdout).group(1))
    _results["openloop_tps"] = tps
    _results["peak_rss_mb"] = rss
    emit(f"open loop: {OPENLOOP_TXNS:,} txns at {OPENLOOP_RATE_TPS:.0f} tps "
         f"offered -> {tps:.1f} tps measured, peak RSS {rss:.1f} MiB "
         f"(ceiling {OPENLOOP_PEAK_RSS_MB_CEILING:.0f})")
    floor = OPENLOOP_TPS_FLOOR_FRACTION * OPENLOOP_RATE_TPS
    assert tps >= floor, (
        f"open-loop throughput collapsed: {tps:.1f} tps measured against "
        f"{OPENLOOP_RATE_TPS:.0f} offered (floor {floor:.0f})")
    assert rss <= OPENLOOP_PEAK_RSS_MB_CEILING, (
        f"open-loop peak RSS {rss:.1f} MiB exceeds the "
        f"{OPENLOOP_PEAK_RSS_MB_CEILING:.0f} MiB ceiling — per-"
        f"transaction state is being retained somewhere")


def test_emit_bench_harness_json():
    """Last in file: persist the perf numbers gathered above."""
    payload = {
        "seed_baselines": {
            "kernel_schedule_events_per_sec": SEED_SCHEDULE_EVENTS_PER_SEC,
            "per_txn_host_cost_ms": SEED_PER_TXN_HOST_MS,
        },
        **_results,
    }
    _RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True)
                             + "\n")
    emit(f"wrote {_RESULTS_PATH.name}: "
         + json.dumps(_results, sort_keys=True))
    assert _results.get("kernel_post_events_per_sec", 0) > 0
