"""Paper Table 1: Benchmarks of PC-RT and Mach.

These are the raw machine/OS numbers the whole cost model is calibrated
from.  In the reproduction they are configuration, not measurement —
this bench renders them and asserts the calibration identities the
paper's analysis depends on.
"""

from repro.bench.figures import table1_report
from repro.bench.report import render_primitive_table

from benchmarks.conftest import emit


def test_table1(once):
    rows = once(table1_report)
    emit(render_primitive_table("Table 1  Benchmarks of PC-RT and Mach",
                                rows))
    by_name = {r.name: r for r in rows}
    # The identities the paper's arguments rest on:
    assert by_name["Local IPC, 8-byte in-line"].value == 1.5
    assert by_name["Remote IPC, 8-byte in-line"].value == 19.1
    assert by_name["Raw disk write, 1 track"].value == 26.8
    # Context switch and kernel call are sub-millisecond; IPC dominates.
    assert by_name["Context switch, swtch()"].value < 1000.0
    assert (by_name["Local IPC, 8-byte in-line"].value * 1000
            > by_name["Kernel call, getpid()"].value)
