"""Ablations for the design choices DESIGN.md calls out.

Not figures from the paper, but quantifications of the trade-offs it
argues in prose: the read-only optimization (§4.2 Q2), quorum sizing
(§3.3 change 3), the group-commit window (§3.5), and the conclusions'
deployment guidance for non-blocking commitment.
"""

from repro.bench.ablations import (
    group_commit_window_ablation,
    protocol_overhead_ablation,
    quorum_policy_ablation,
    read_only_ablation,
)
from repro.bench.report import render_table

from benchmarks.conftest import emit


def test_read_only_optimization(once):
    """§4.2 Q2: without the optimization, a distributed read pays the
    full update machinery — prepare forces and a second phase."""
    result = once(read_only_ablation, trials=15)
    emit(render_table(
        "Ablation: read-only optimization (1-sub read transaction)",
        ["CONFIG", "LATENCY ms", "FORCES/txn"],
        [("optimization on", f"{result.optimized.mean:6.1f}",
          f"{result.optimized_forces:.1f}"),
         ("optimization off", f"{result.unoptimized.mean:6.1f}",
          f"{result.unoptimized_forces:.1f}")]))
    assert result.optimized_forces == 0.0
    assert result.unoptimized_forces >= 2.0
    assert result.unoptimized.mean > result.optimized.mean + 20.0


def test_quorum_policy(once):
    """Commit-weighted quorums (Qc=1) trade availability for speed:
    faster commit point, but a dead coordinator strands everyone."""
    result = once(quorum_policy_ablation, trials=10)
    emit(render_table(
        "Ablation: non-blocking quorum policy (3 sites)",
        ["POLICY", "LATENCY ms", "SURVIVORS DECIDE AFTER COORD CRASH?"],
        [(p, f"{result.latency[p].mean:6.1f}",
          "yes" if result.survivors_decide[p] else "NO (blocked)")
         for p in ("majority", "commit_weighted")]))
    assert result.latency["commit_weighted"].mean \
        < result.latency["majority"].mean
    assert result.survivors_decide["majority"]
    assert not result.survivors_decide["commit_weighted"]


def test_group_commit_window(once):
    """§3.5's trade, measured honestly: batching at all is the win
    (Figure 4); past the minimum window, latency strictly worsens and
    closed-loop throughput does not improve."""
    points = once(group_commit_window_ablation)
    emit(render_table(
        "Ablation: group-commit window (4 update pairs, VAX profile)",
        ["WINDOW ms", "TPS", "MEAN LATENCY ms"],
        [(f"{p.window_ms:.0f}", f"{p.tps:6.1f}",
          f"{p.mean_latency_ms:7.1f}") for p in points]))
    # Latency strictly worsens with the window.
    latencies = [p.mean_latency_ms for p in points]
    assert latencies == sorted(latencies)
    # Throughput never improves past the minimum window (closed loop).
    assert points[-1].tps <= points[0].tps * 1.05
    # But even the widest window still beats the unbatched logger wall.
    from repro.bench.experiment import measure_throughput
    unbatched = measure_throughput(4, 20, False, duration_ms=6_000.0)
    assert points[0].tps > unbatched.tps


def test_protocol_overhead_shrinks_with_transaction_size(once):
    """The conclusions' guidance: the non-blocking premium is fixed, so
    long transactions and wide-area deployments feel it least."""
    points = once(protocol_overhead_ablation, op_counts=(1, 5, 20),
                  trials=6)
    emit(render_table(
        "Ablation: NB-vs-2PC overhead by transaction size and network",
        ["NET", "OPS/site", "2PC ms", "NB ms", "NB premium"],
        [(p.profile, p.ops_per_site, f"{p.two_phase_ms:7.1f}",
          f"{p.non_blocking_ms:7.1f}",
          f"{p.overhead_fraction * 100:5.1f} %") for p in points]))
    by_profile = {}
    for p in points:
        by_profile.setdefault(p.profile, []).append(p)
    for profile, series in by_profile.items():
        series.sort(key=lambda p: p.ops_per_site)
        fractions = [p.overhead_fraction for p in series]
        # Relative premium falls as transactions grow.
        assert fractions[-1] < fractions[0], profile
        # At 20 ops/site the premium is already small (<15%).
        assert fractions[-1] < 0.15, profile
