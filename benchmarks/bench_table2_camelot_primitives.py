"""Paper Table 2: Latency of Camelot Primitives.

Configured values rendered next to live measurements of the same
primitives inside the simulator — the measured column must track the
configured one (within queueing/jitter), or the protocol-level results
would be built on sand.
"""

from repro.analysis.primitives import table2_rows
from repro.bench.figures import table2_measured
from repro.bench.report import render_primitive_table, render_table

from benchmarks.conftest import emit


def test_table2(once):
    measured = once(table2_measured, trials=40)
    emit(render_primitive_table(
        "Table 2  Latency of Camelot primitives (configured)",
        table2_rows()))
    emit(render_table(
        "Table 2  configured vs measured in the simulator",
        ["PRIMITIVE", "CONFIGURED ms", "MEASURED ms"],
        [(m.name, f"{m.configured:6.2f}", f"{m.measured:6.2f}")
         for m in measured]))
    by_name = {m.name: m for m in measured}
    ipc = by_name["Local in-line IPC to server"]
    assert abs(ipc.measured - ipc.configured) < 1.5
    force = by_name["Log force"]
    assert abs(force.measured - force.configured) < 2.0
    dgram = by_name["Datagram"]
    assert abs(dgram.measured - dgram.configured) < 4.0
    rpc = by_name["Remote RPC"]
    assert abs(rpc.measured - rpc.configured) < 4.0
