"""Shared helpers for the benchmark suite.

Every ``bench_*.py`` regenerates one table or figure from the paper:
run ``pytest benchmarks/ --benchmark-only -s`` to see them rendered in
the paper's format alongside pytest-benchmark's timing table.
"""

from __future__ import annotations

import pytest


def emit(text: str) -> None:
    """Print a rendered table, bracketed for readability under -s."""
    print("\n" + text + "\n")


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing.

    Simulated experiments are deterministic, so repeated rounds only
    re-measure host CPU; one round keeps the suite fast while still
    recording wall time per figure.
    """

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
