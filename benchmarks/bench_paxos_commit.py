"""Paxos Commit: fault-free latency premium and under-faults availability.

Two cells that place the third protocol family in the paper's Table-3 /
Figure-2 frame:

- **Fault-free premium** — with one subordinate the acceptor set
  degenerates to the leader alone (F=0) and the protocol must price
  *exactly* like optimized two-phase commit: same 2 log forces, same 3
  protocol datagrams, same latency.  With two subordinates the site
  count affords F=1 (three acceptors), and the replication rounds show
  up as a bounded latency premium over 2PC — the price of
  non-blockingness, paid only when fault tolerance is actually bought.
- **Availability under faults** — sweep a permanent coordinator crash
  through the commit window.  Every live site under Paxos Commit must
  still decide (the elected backup completes the transaction); under
  2PC the durably prepared survivor legitimately blocks.  Availability
  is the fraction of (live site, run) pairs that reached a decision.
"""

from repro.bench.experiment import measure_latency
from repro.chaos.scenario import ScenarioSpec, run_schedule
from repro.chaos.schedule import FaultEvent, FaultSchedule
from repro.core.outcomes import ProtocolKind

from benchmarks.conftest import emit

# Crash instants spanning prepare delivery through decision notices.
CRASH_TIMES = (110.0, 140.0, 170.0, 220.0)


def _latency_premium(trials: int = 12):
    rows = []
    for n_subs in (1, 2, 3):
        tp = measure_latency(n_subs, trials=trials)
        pc = measure_latency(n_subs, protocol=ProtocolKind.PAXOS_COMMIT,
                             trials=trials)
        rows.append((n_subs, tp, pc))
    return rows


def test_fault_free_latency_premium(once):
    rows = once(_latency_premium)
    lines = ["Paxos Commit fault-free latency vs optimized 2PC (ms)",
             f"{'subs':>4s} {'2pc':>8s} {'paxos':>8s} {'ratio':>6s} "
             f"{'LF':>5s} {'DG':>5s}"]
    for n_subs, tp, pc in rows:
        ratio = pc.summary.mean / tp.summary.mean
        lines.append(f"{n_subs:4d} {tp.summary.mean:8.1f} "
                     f"{pc.summary.mean:8.1f} {ratio:6.3f} "
                     f"{pc.forces_per_txn:5.1f} {pc.datagrams_per_txn:5.1f}")
    emit("\n".join(lines))

    # F=0 (two sites, one acceptor): exact 2PC degeneration — identical
    # primitive counts and latency within measurement noise.
    _, tp1, pc1 = rows[0]
    assert pc1.forces_per_txn == tp1.forces_per_txn == 2.0
    assert pc1.datagrams_per_txn == tp1.datagrams_per_txn == 3.0
    assert abs(pc1.summary.mean - tp1.summary.mean) \
        <= 0.02 * tp1.summary.mean

    # F=1 (three+ sites): the premium exists but stays well under the
    # non-blocking protocol's ~2x band.
    for _, tp, pc in rows[1:]:
        ratio = pc.summary.mean / tp.summary.mean
        assert 1.05 <= ratio <= 1.8, f"premium ratio {ratio:.2f}"
        assert pc.forces_per_txn > tp.forces_per_txn


def _availability(protocol: str):
    """(decided live-site pairs, total live-site pairs, blocked sites)."""
    decided = total = blocked = 0
    for t in CRASH_TIMES:
        spec = ScenarioSpec(protocol=protocol)
        schedule = FaultSchedule(
            events=(FaultEvent(t, "crash", site="a"),),
            label=f"avail/{protocol}@{t:g}")
        result = run_schedule(spec, schedule)
        assert result.ok, [v.describe() for v in result.violations]
        for site in ("b", "c"):
            total += 1
            if result.tombstones.get(site) is not None:
                decided += 1
            else:
                blocked += 1
    return decided, total, blocked


def test_availability_under_coordinator_crash(once):
    def both():
        return {p: _availability(p) for p in ("2pc", "paxos")}

    results = once(both)
    lines = ["Availability: permanent coordinator crash, live-site "
             "decisions",
             f"{'protocol':>8s} {'decided':>8s} {'total':>6s} "
             f"{'availability':>12s}"]
    for proto, (decided, total, blocked) in results.items():
        lines.append(f"{proto:>8s} {decided:8d} {total:6d} "
                     f"{decided / total:12.2f}")
    emit("\n".join(lines))

    pc_decided, pc_total, _ = results["paxos"]
    tp_decided, tp_total, tp_blocked = results["2pc"]
    # The F-fault-tolerance claim: every live site decides, every time.
    assert pc_decided == pc_total
    # And the contrast that motivates the family: 2PC demonstrably
    # blocks somewhere in the same sweep.
    assert tp_blocked > 0
