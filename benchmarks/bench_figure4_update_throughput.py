"""Paper Figure 4: Update Transaction Throughput.

Application/server pairs on a 4-way multiprocessor execute minimal
update transactions; parameters are TranMan thread count (1/5/20) and
group commit.  Shape assertions, per the paper:

- "In update tests, the logger is the bottleneck ... seen most
  obviously in comparing the numbers gathered with and without group
  commit": group commit beats every non-batched configuration at
  saturation;
- a single TranMan thread flattens almost immediately;
- 20 threads buys nothing over 5 ("the numbers for the 20-thread tests
  are roughly the same as those for the 5-thread tests");
- update scaling from 1 to 2 pairs is weaker than read scaling
  (paper: 32% vs 52%).
"""

from repro.bench.figures import figure4
from repro.bench.report import render_throughput

from benchmarks.conftest import emit

PAPER_NOTE = """paper: y-axis 6-10 TPS, group commit on top, 1 thread flat;
our absolute TPS runs higher (same protocols, different machine
constants) — the ordering and saturation shape are the reproduced
claims."""


def test_figure4(once):
    curves = once(figure4, duration_ms=6_000.0)
    emit(render_throughput(
        "Figure 4  Update throughput (TPS) vs app/server pairs", curves)
        + "\n" + PAPER_NOTE)

    gc = curves["group commit, 20 threads"].tps()
    t20 = curves["20 threads"].tps()
    t5 = curves["5 threads"].tps()
    t1 = curves["1 thread"].tps()

    # Group commit wins at saturation (the logger bottleneck is real).
    assert gc[-1] > t20[-1] * 1.2
    # Without batching, throughput flattens at the log device's rate.
    assert t20[-1] < 1.35 * t20[1]
    # One thread is a bottleneck from the start.
    assert t1[-1] < t5[-1]
    assert max(t1) < 1.25 * min(t1)  # essentially flat
    # 20 threads == 5 threads (within noise).
    for a, b in zip(t20, t5):
        assert abs(a - b) / max(a, b) < 0.15
    # Batching actually happened.
    gc_point = curves["group commit, 20 threads"].points[-1]
    assert gc_point.mean_batch > 1.2
