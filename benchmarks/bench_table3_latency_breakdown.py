"""Paper Table 3: Latency breakdown — static analysis vs measurement.

Prints the full critical-path term decomposition for the anchor cases
and compares our static/measured pairs with the paper's own.  The key
property the paper reports: "the addition of primitive latencies
provides an underestimate of the measured time", with the gap around
5-10%% and larger (relatively) for small transactions.
"""

from repro.analysis.static_analysis import (
    local_update_completion,
    twophase_update_completion,
)
from repro.bench.figures import table3
from repro.bench.report import render_static_path, render_table3

from benchmarks.conftest import emit


def test_table3(once):
    rows = once(table3, trials=20)
    emit(render_table3(rows))
    emit("Static path, local update:\n"
         + render_static_path(local_update_completion()))
    emit("Static path, 1-subordinate 2PC update:\n"
         + render_static_path(twophase_update_completion(1)))

    by_label = {r.label: r for r in rows}
    # Static underestimates measured for the 2PC cases, as in the paper.
    for label in ("local update", "1-subordinate update", "local read"):
        row = by_label[label]
        assert row.static_ms <= row.measured.mean, label
        # ...but not grossly: within 35%.
        assert row.measured.mean <= row.static_ms * 1.35, label
    # Our local-update static formula reproduces the paper's 24.5 ms.
    assert abs(by_label["local update"].static_ms - 24.5) < 1e-6
    assert abs(by_label["local read"].static_ms - 9.5) < 1e-6
    # Measured values land near the paper's measurements.
    assert 24.0 <= by_label["local update"].measured.mean <= 38.0   # 31
    assert 90.0 <= by_label["1-subordinate update"].measured.mean <= 130.0
    assert 9.0 <= by_label["local read"].measured.mean <= 16.0      # 13
    # Non-blocking 1-sub lands in the paper's 145-160 band.
    assert 135.0 <= by_label["1-subordinate NB update"].measured.mean <= 185.0
