"""Paper §4.2 lock-contention dissection (ablation).

The unoptimized experiment "locked and updated the same data element
during every transaction": the second transaction's remote operation
arrives before the first transaction's subordinate has written its
commit record and dropped its locks, so it waits (~5 ms by the paper's
static analysis).  The delayed-commit optimization drops locks before
the commit-record write, eliminating most of those waits.

This bench runs back-to-back same-object transactions under both
variants and compares observed lock waits.
"""

from repro.bench.figures import lock_contention
from repro.bench.report import render_table

from benchmarks.conftest import emit


def test_lock_contention(once):
    result = once(lock_contention, txns=25)
    emit(render_table(
        "S4.2  Lock waits in 25 back-to-back same-object transactions",
        ["VARIANT", "LOCK WAITS"],
        sorted(result.per_variant.items())))
    # The unoptimized variant (locks held through the commit-record
    # force) must produce at least as many waits as the optimized one.
    assert result.per_variant["unoptimized"] >= \
        result.per_variant["optimized"]
