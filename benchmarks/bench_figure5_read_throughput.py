"""Paper Figure 5: Read Transaction Throughput.

Same experiment with read-only transactions: no logger involvement, so
"the transaction manager and the message system are the only components
that receive substantial load".  Shape assertions:

- "a single transaction management thread can accommodate more than 1
  client but not more than 2": the 1-thread curve flattens at 2 pairs;
- with enough threads the experiment stops being TranMan-bound and
  scales further before CPU saturation;
- 20 threads == 5 threads;
- read throughput is far above update throughput at every point.
"""

from repro.bench.figures import figure4, figure5
from repro.bench.report import render_throughput

from benchmarks.conftest import emit

PAPER_NOTE = """paper: y-axis 22-36 TPS; 52% scaling 1->2 pairs and 12%
2->3 for reads vs 32%/4% for updates; 1-thread curve flat beyond 2."""


def test_figure5(once):
    curves = once(figure5, duration_ms=6_000.0)
    emit(render_throughput(
        "Figure 5  Read throughput (TPS) vs app/server pairs", curves)
        + "\n" + PAPER_NOTE)

    t1 = curves["1 thread"].tps()
    t5 = curves["5 threads"].tps()
    t20 = curves["20 threads"].tps()

    # One thread accommodates more than 1 client...
    assert t1[1] > t1[0] * 1.15
    # ...but not more than 2: flat from there on.
    assert t1[2] < t1[1] * 1.1
    assert t1[3] < t1[1] * 1.1
    # More threads lift the ceiling ("it is not operating-system-bound,
    # because the same test with 5 and 20 threads yields better results").
    assert t5[2] > t1[2] * 1.3
    # 20 == 5 within noise.
    for a, b in zip(t20, t5):
        assert abs(a - b) / max(a, b) < 0.15
    # Reads scale better 1->2 than updates do (52% vs 32% in the paper).
    update_t5 = figure4(pairs_range=(1, 2), duration_ms=6_000.0)["5 threads"]
    read_gain = t5[1] / t5[0]
    update_gain = update_t5.tps()[1] / update_t5.tps()[0]
    assert read_gain > update_gain * 0.95
    # And read TPS dominates update TPS outright.
    assert t5[1] > update_t5.tps()[1]
