"""Paper §4.1: the Camelot RPC latency breakdown.

The paper measures 1000 RPCs (28.5 ms each) and dissects them into the
NetMsgServer RPC (19.1), extra ComMan-NetMsgServer IPC (3.0), and ComMan
CPU at both sites (6.4) — "miraculously, there is no extra or missing
time".  This bench runs the same experiment against the simulated path
and checks the same accounting.
"""

import pytest

from repro.bench.figures import rpc_breakdown
from repro.bench.report import render_rpc_breakdown

from benchmarks.conftest import emit


def test_rpc_breakdown(once):
    result = once(rpc_breakdown, calls=200)
    emit(render_rpc_breakdown(result))
    # The component accounting sums to the paper's 28.5 ms.
    assert result.accounted_ms == pytest.approx(28.5)
    # The measured mean lands on the accounting (jitter adds ~1-2 ms,
    # just as the paper's own measured-vs-static gap).
    assert 28.0 <= result.measured_mean_ms <= 33.0
    assert result.measured_n == 200
