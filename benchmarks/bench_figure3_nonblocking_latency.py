"""Paper Figure 3: Latency of Transactions, Non-blocking Commit.

Same basic experiment as Figure 2, with the non-blocking protocol.
Shape assertions:

- write latency between 1.2x and 2x the optimized 2PC write ("somewhat
  less than twice as high, in line with the statically computed 4/2 and
  5/3 ratios");
- reads identical in shape to 2PC reads ("a transaction that is
  completely read-only has the same critical path performance as in
  two-phase commitment");
- 4 log forces + 5 datagrams on the 1-subordinate update critical path.
"""

from repro.bench.experiment import measure_latency
from repro.bench.figures import figure3
from repro.bench.report import render_figure

from benchmarks.conftest import emit

PAPER_NOTE = """paper anchors: 1-sub write ~145-150 ms (static 150), read
1-sub ~107 ms measured vs 70 static; all values rising swiftly with
transaction size; variance stays high."""


def test_figure3(once):
    series = once(figure3, trials=20)
    emit(render_figure(
        "Figure 3  Non-blocking commit latency vs subordinates (ms)",
        series) + "\n" + PAPER_NOTE)

    nb_write = series["write"].means()
    nb_read = series["read"].means()

    # Monotone growth, read below write.
    assert nb_write == sorted(nb_write)
    for i in range(4):
        assert nb_read[i] < nb_write[i]

    # Paper band for the 1-subordinate write.
    assert 135.0 <= nb_write[1] <= 185.0

    # Ratio to 2PC: less than twice, more than ~1.2x.
    two_phase = [measure_latency(n, trials=10).summary.mean
                 for n in (0, 1, 2, 3)]
    for i in range(4):
        ratio = nb_write[i] / two_phase[i]
        assert 1.15 <= ratio <= 2.1, f"{i} subs: ratio {ratio:.2f}"

    # Primitive counts: 4 forces, 5 datagrams (+1 outcome-ack off-path).
    one_sub = dict(series["write"].points)[1]
    assert one_sub.forces_per_txn == 4.0
    assert 5.0 <= one_sub.datagrams_per_txn <= 6.0
    # Read-only: identical counts to 2PC read.
    read_one = dict(series["read"].points)[1]
    assert read_one.forces_per_txn == 0.0
    assert read_one.datagrams_per_txn == 2.0
