"""Paper Figure 2: Latency of Transactions, Two-phase Commit.

The basic experiment: a minimal transaction on a coordinator and 0-3
subordinate sites, for the three write variants (optimized /
semi-optimized / unoptimized) plus read, with the derived transaction-
management-only series.  Shape assertions:

- optimized <= semi-optimized <= unoptimized at every subordinate count
  (the §3.2 optimization is free latency-wise and removes interference);
- read well below write;
- latency and its *variance* grow with the subordinate count ("variance
  goes up quickly as the number of subordinates goes up");
- the optimized critical path holds at 2 log forces + 3 datagrams.
"""

from repro.bench.figures import figure2
from repro.bench.report import render_figure

from benchmarks.conftest import emit

PAPER_NOTE = """paper anchors: optimized write 31 ms local / 110 ms 1 sub,
rising to ~200-250 ms at 3 subs with stddevs growing from (1) to (50);
read far below write throughout."""


def test_figure2(once):
    series = once(figure2, trials=20)
    emit(render_figure(
        "Figure 2  2PC latency vs subordinates (ms, stddev)", series)
        + "\n" + PAPER_NOTE)

    opt = series["optimized write"].means()
    semi = series["semi-optimized write"].means()
    unopt = series["unoptimized write"].means()
    read = series["read"].means()

    # Ordering of the variants (small tolerance: they share a prefix).
    for i in range(4):
        assert opt[i] <= semi[i] + 3.0
        assert semi[i] <= unopt[i] + 3.0
    # The dissection shows at >=1 subordinate: the extra force and the
    # extra ack datagram cost real time in a serial stream.
    assert unopt[3] > opt[3]
    # Read far below write.
    for i in range(4):
        assert read[i] < opt[i]
    # Latency grows with subordinates.
    assert opt == sorted(opt)
    # Variance grows with subordinates (paper: "(1)" -> "(50)").
    opt_sd = series["optimized write"].stdevs()
    assert opt_sd[3] > opt_sd[1]

    # Primitive counts on the optimized path (2 LF + 3 DG per commit).
    one_sub = dict(series["optimized write"].points)[1]
    assert one_sub.forces_per_txn == 2.0
    assert one_sub.datagrams_per_txn == 3.0
    # Read: no forces, one message round.
    read_one = dict(series["read"].points)[1]
    assert read_one.forces_per_txn == 0.0
    assert read_one.datagrams_per_txn == 2.0

    # Calibration against the paper's anchor numbers (generous bands —
    # the shape is the claim, but we land close in absolute terms too).
    assert 24.0 <= opt[0] <= 38.0        # paper: 31
    assert 90.0 <= opt[1] <= 130.0       # paper: 110
    assert 9.0 <= read[0] <= 16.0        # paper: 13
