"""Paper §4.2 / Conclusions: multicast reduces variance, not latency.

"A surprising result is that multicasting messages from coordinator to
subordinates reduces variance substantially, suggesting that much of
the variance is created by the coordinator's repeated sends and not by
its repeated receives."  And from the conclusions: "Multicast
communication for coordinator to subordinates does not reduce commit
latency, but does reduce variance."

Measured on the commit phase (commit call to return) of 3-subordinate
update transactions.
"""

from repro.bench.figures import multicast_variance
from repro.bench.report import render_multicast

from benchmarks.conftest import emit


def test_multicast_variance(once):
    result = once(multicast_variance, trials=40)
    emit(render_multicast(result))
    # Substantial variance reduction...
    assert result.variance_reduction >= 0.35
    # ...with the mean roughly unchanged (within ~15%).
    assert abs(result.multicast.mean - result.unicast.mean) \
        <= 0.15 * result.unicast.mean
